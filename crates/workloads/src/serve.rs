//! Sustained-load serving: replay a long stream of exchange requests
//! through one long-lived cluster.
//!
//! The figure harnesses measure a handful of laps with cold-to-warm
//! transitions; this driver instead keeps a two-rank cluster alive while
//! hundreds of thousands of requests flow through it, which is what
//! exposes steady-state behaviour the short runs cannot: event-queue
//! growth, wire-message allocator churn, staging-pool recycling, and the
//! tail of the per-batch latency distribution.
//!
//! Requests arrive in deterministic batches: each lap, every rank spends
//! `gap_ns` of application think time ([`AppOp::Compute`]), then posts
//! `batch` receives and `batch` sends and waits for all of them. The lap
//! timer starts *after* the think time, so a lap's duration is pure
//! service latency and the percentiles read straight off the recorded
//! laps. Everything is virtual-time deterministic: the same config yields
//! byte-identical outcomes on any host and any `--jobs` count.

use crate::Workload;
use fusedpack_gpu::{DataMode, PoolStats};
use fusedpack_mpi::program::BufInit;
use fusedpack_mpi::{AppOp, BufId, ClusterBuilder, Program, RankId, SchemeKind, TypeSlot};
use fusedpack_net::{Platform, TopologyHandle};
use fusedpack_sim::{Duration, WheelStats};

/// Configuration of one sustained-load run.
#[derive(Clone)]
pub struct ServeConfig {
    pub platform: Platform,
    pub scheme: SchemeKind,
    pub workload: Workload,
    /// Total exchange requests (Isends summed over both ranks) to replay.
    /// Rounded up to a whole number of batches.
    pub requests: u64,
    /// Requests posted per rank per lap.
    pub batch: usize,
    /// Deterministic think time before each batch, in nanoseconds —
    /// the arrival-rate knob (0 = saturating, back-to-back batches).
    pub gap_ns: u64,
    /// Leading laps excluded from the latency distribution (cold caches).
    pub warmup_laps: usize,
    /// Deterministic per-lap element counts, cycled lap by lap — the
    /// request-size mix of the replay. Empty means every lap uses
    /// `workload.count`. Mixing sizes is what gives the latency
    /// distribution a real tail (identical laps collapse p50 = p999) and
    /// what stresses the staging pool's varied-capacity recycling.
    pub size_mix: Vec<u64>,
    /// Route transfers through a topology; `None` runs the flat model.
    pub topology: Option<TopologyHandle>,
    /// Worker shards for the event loop (clamped by the cluster; 1 =
    /// single-queue). Outcomes are byte-identical at any shard count.
    pub shards: u32,
}

impl ServeConfig {
    pub fn new(platform: Platform, scheme: SchemeKind, workload: Workload, requests: u64) -> Self {
        ServeConfig {
            platform,
            scheme,
            workload,
            requests,
            batch: 16,
            gap_ns: 0,
            warmup_laps: 2,
            size_mix: Vec::new(),
            topology: None,
            shards: 1,
        }
    }

    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = shards.max(1);
        self
    }

    pub fn with_gap_ns(mut self, gap_ns: u64) -> Self {
        self.gap_ns = gap_ns;
        self
    }

    pub fn with_size_mix(mut self, mix: Vec<u64>) -> Self {
        assert!(mix.iter().all(|&c| c > 0), "mix counts must be positive");
        self.size_mix = mix;
        self
    }

    /// The per-lap element-count cycle (resolved default).
    fn counts(&self) -> Vec<u64> {
        if self.size_mix.is_empty() {
            vec![self.workload.count]
        } else {
            self.size_mix.clone()
        }
    }

    pub fn with_topology(mut self, topo: TopologyHandle) -> Self {
        self.topology = Some(topo);
        self
    }

    /// Laps needed to serve `requests` (both ranks post `batch` each lap).
    pub fn laps(&self) -> usize {
        let per_lap = 2 * self.batch as u64;
        (self.requests.div_ceil(per_lap)).max(1) as usize + self.warmup_laps
    }
}

/// Results of one sustained-load run.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Requests actually served (laps × batch × 2 ranks, warm-up included).
    pub requests: u64,
    /// Measured laps (after warm-up discard).
    pub laps: usize,
    /// Virtual end-to-end time of the whole run.
    pub elapsed: Duration,
    /// Sustained request throughput over the whole run, requests per
    /// virtual second (think time included — this is offered-load
    /// throughput, not peak service rate).
    pub throughput_rps: f64,
    /// Batch service-latency percentiles over the measured laps.
    pub p50: Duration,
    pub p99: Duration,
    pub p999: Duration,
    pub max: Duration,
    /// Event-queue timing-wheel health over the whole run.
    pub wheel: WheelStats,
    /// Peak in-flight wire messages (slab occupancy high-water).
    pub wire_high_water: u32,
    /// Staging buffer-pool recycling counters.
    pub pool: PoolStats,
    /// Simulation events processed.
    pub events: u64,
    /// Window barriers the sharded coordinator ran (zero single-queue).
    pub shard_barriers: u64,
    /// Layout-compiler cache health merged over both ranks: after the
    /// single commit per rank, every per-message acquire is a hit, so the
    /// hit rate converges to ~100% under sustained load.
    pub layout_cache: fusedpack_datatype::LayoutCacheStats,
}

/// Nearest-rank percentile of an ascending-sorted slice: the smallest
/// element with at least `num/den` of the distribution at or below it.
/// Integer-only, so identical everywhere.
fn percentile(sorted: &[Duration], num: u64, den: u64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let n = sorted.len() as u64;
    let rank = (n * num).div_ceil(den).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Build one rank's serve program: `laps` batches, each preceded by the
/// arrival gap, timed individually.
fn serve_program(cfg: &ServeConfig, seed: u64, peer: RankId) -> Program {
    let counts = cfg.counts();
    let layout = fusedpack_datatype::Layout::of(&cfg.workload.desc);
    let max_count = counts.iter().copied().max().unwrap_or(1);
    let buf_len = layout.footprint(max_count).max(1);
    let mut p = Program::new();
    let send: Vec<BufId> = (0..cfg.batch)
        .map(|i| p.buffer(buf_len, BufInit::Random(seed + i as u64)))
        .collect();
    let recv: Vec<BufId> = (0..cfg.batch)
        .map(|_| p.buffer(buf_len, BufInit::Zero))
        .collect();
    p.push(AppOp::Commit {
        slot: TypeSlot(0),
        desc: cfg.workload.desc.clone(),
    });
    for lap in 0..cfg.laps() {
        // Both ranks cycle the same mix, so signatures stay matched.
        let count = counts[lap % counts.len()];
        if cfg.gap_ns > 0 {
            p.push(AppOp::Compute { ns: cfg.gap_ns });
        }
        p.push(AppOp::ResetTimer);
        for (i, &rbuf) in recv.iter().enumerate() {
            p.push(AppOp::Irecv {
                buf: rbuf,
                ty: TypeSlot(0),
                count,
                src: peer,
                tag: i as u32,
            });
        }
        for (i, &sbuf) in send.iter().enumerate() {
            p.push(AppOp::Isend {
                buf: sbuf,
                ty: TypeSlot(0),
                count,
                dst: peer,
                tag: i as u32,
            });
        }
        p.push(AppOp::Waitall);
        p.push(AppOp::RecordLap);
    }
    p
}

/// Run one sustained-load measurement.
pub fn run_serve(cfg: &ServeConfig) -> ServeOutcome {
    assert!(cfg.batch >= 1 && cfg.requests >= 1);
    let p0 = serve_program(cfg, 7, RankId(1));
    let p1 = serve_program(cfg, 1007, RankId(0));
    let mut builder = ClusterBuilder::new(cfg.platform.clone(), cfg.scheme.clone())
        .data_mode(DataMode::ModelOnly)
        .shards(cfg.shards)
        .add_rank(0, p0)
        .add_rank(1, p1);
    if let Some(topo) = &cfg.topology {
        builder = builder.topology(topo.clone());
    }
    let mut cluster = builder.build();
    let report = cluster.run();

    let laps = cfg.laps();
    let mut measured: Vec<Duration> = (cfg.warmup_laps..laps)
        .map(|i| report.lap_makespan(i))
        .collect();
    measured.sort_unstable();

    let elapsed = Duration(report.end_time.0);
    let served = 2 * cfg.batch as u64 * laps as u64;
    let throughput_rps = if elapsed.as_nanos() == 0 {
        0.0
    } else {
        served as f64 / (elapsed.as_nanos() as f64 / 1.0e9)
    };

    ServeOutcome {
        requests: served,
        laps: measured.len(),
        elapsed,
        throughput_rps,
        p50: percentile(&measured, 50, 100),
        p99: percentile(&measured, 99, 100),
        p999: percentile(&measured, 999, 1000),
        max: measured.last().copied().unwrap_or(Duration::ZERO),
        wheel: report.wheel,
        wire_high_water: report.wire_high_water,
        pool: cluster.staging_pool_stats(),
        events: report.events_processed,
        shard_barriers: report.shard.barriers,
        layout_cache: report.layout_cache,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::milc::milc_su3_zdown;
    use crate::specfem::specfem3d_oc;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<Duration> = (1..=100).map(Duration).collect();
        assert_eq!(percentile(&v, 50, 100), Duration(50));
        assert_eq!(percentile(&v, 99, 100), Duration(99));
        assert_eq!(percentile(&v, 999, 1000), Duration(100));
        assert_eq!(percentile(&v[..1], 50, 100), Duration(1));
        assert_eq!(percentile(&[], 50, 100), Duration::ZERO);
    }

    #[test]
    fn serve_reports_throughput_and_tails() {
        let cfg = ServeConfig::new(
            Platform::lassen(),
            SchemeKind::fusion_default(),
            specfem3d_oc(200),
            2_000,
        );
        let out = run_serve(&cfg);
        assert!(out.requests >= 2_000);
        assert!(out.laps > 10);
        assert!(out.throughput_rps > 0.0);
        assert!(out.p50 <= out.p99 && out.p99 <= out.p999 && out.p999 <= out.max);
        assert!(out.p50.as_nanos() > 0);
        assert!(out.events > 0);
        assert!(
            out.wheel.slab_high_water > 0,
            "a long run must exercise the event slab"
        );
    }

    #[test]
    fn think_time_slows_offered_load_not_service_latency() {
        let base = ServeConfig::new(
            Platform::lassen(),
            SchemeKind::fusion_default(),
            milc_su3_zdown(8),
            1_000,
        );
        let hot = run_serve(&base);
        let paced = run_serve(&base.clone().with_gap_ns(50_000));
        assert!(
            paced.throughput_rps < hot.throughput_rps,
            "pacing must lower offered-load throughput: {} vs {}",
            paced.throughput_rps,
            hot.throughput_rps
        );
        // The lap timer starts after the gap, so service latency stays in
        // the same ballpark (the paced run may even be quicker per batch).
        assert!(paced.p50 <= hot.p50 * 2);
    }

    #[test]
    fn serve_is_deterministic() {
        let cfg = ServeConfig::new(
            Platform::abci(),
            SchemeKind::fusion_adaptive(),
            specfem3d_oc(300),
            1_500,
        )
        .with_gap_ns(2_000);
        let a = run_serve(&cfg);
        let b = run_serve(&cfg);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.p50, b.p50);
        assert_eq!(a.p999, b.p999);
        assert_eq!(a.wire_high_water, b.wire_high_water);
        assert_eq!(a.wheel.slab_high_water, b.wheel.slab_high_water);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn sharded_serve_matches_single_queue_exactly() {
        let cfg = ServeConfig::new(
            Platform::lassen(),
            SchemeKind::fusion_default(),
            specfem3d_oc(200),
            1_000,
        )
        .with_gap_ns(2_000);
        let single = run_serve(&cfg);
        let sharded = run_serve(&cfg.clone().with_shards(2));
        assert!(sharded.shard_barriers > 0, "sharding engaged");
        assert_eq!(single.elapsed, sharded.elapsed);
        assert_eq!(single.p50, sharded.p50);
        assert_eq!(single.p99, sharded.p99);
        assert_eq!(single.p999, sharded.p999);
        assert_eq!(single.max, sharded.max);
        assert_eq!(single.events, sharded.events);
        assert_eq!(single.requests, sharded.requests);
        // Cache counters are virtual-time-free bookkeeping, but they must
        // still merge to the same totals at any shard count.
        assert_eq!(single.layout_cache.hits(), sharded.layout_cache.hits());
        assert_eq!(single.layout_cache.misses(), sharded.layout_cache.misses());
        assert_eq!(
            single.layout_cache.evictions(),
            sharded.layout_cache.evictions()
        );
    }

    #[test]
    fn serve_amortizes_layout_compilation() {
        let cfg = ServeConfig::new(
            Platform::lassen(),
            SchemeKind::fusion_default(),
            specfem3d_oc(200),
            2_000,
        );
        let out = run_serve(&cfg);
        let lc = &out.layout_cache;
        // One commit-miss per rank, then every per-message acquire hits.
        assert_eq!(lc.misses(), 2, "one compile per rank");
        assert!(lc.hits() >= out.requests, "each message acquires");
        assert!(
            lc.hit_rate() >= 0.99,
            "sustained load must amortize compilation: {}",
            lc.hit_rate()
        );
        assert_eq!(lc.evictions(), 0, "one resident layout, nothing to evict");
        assert!(lc.resident_bytes() > 0 && lc.high_water_bytes() >= lc.resident_bytes());
    }

    #[test]
    fn steady_state_recycles_instead_of_growing() {
        // The whole point of the slab/pool plumbing: a 10x longer run must
        // not grow the in-flight high-water marks (steady state reached).
        let short = run_serve(&ServeConfig::new(
            Platform::lassen(),
            SchemeKind::fusion_default(),
            specfem3d_oc(200),
            600,
        ));
        let long = run_serve(&ServeConfig::new(
            Platform::lassen(),
            SchemeKind::fusion_default(),
            specfem3d_oc(200),
            6_000,
        ));
        assert_eq!(
            long.wire_high_water, short.wire_high_water,
            "wire-slab peak must not scale with run length"
        );
        assert!(
            long.wheel.slab_high_water <= short.wheel.slab_high_water * 2,
            "event-slab peak must not scale with run length: {} vs {}",
            long.wheel.slab_high_water,
            short.wheel.slab_high_water
        );
    }
}
