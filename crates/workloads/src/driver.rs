//! The benchmark driver: one call per (platform, scheme, workload) cell.

use crate::bulk::{bulk_exchange_programs, phase_shift_programs};
use crate::Workload;
use fusedpack_core::SchedStats;
use fusedpack_gpu::DataMode;
use fusedpack_mpi::{Breakdown, ClusterBuilder, RankId, SchemeKind};
use fusedpack_net::Platform;
use fusedpack_sim::{ClampStats, Duration, FaultPlan, FaultSummary};
use fusedpack_telemetry::Telemetry;

/// Configuration of one exchange measurement.
#[derive(Clone)]
pub struct ExchangeConfig {
    pub platform: Platform,
    pub scheme: SchemeKind,
    pub workload: Workload,
    /// Buffers exchanged each way per iteration.
    pub n_msgs: usize,
    /// Iterations discarded for warm-up (layout caches, allocator).
    pub warmup_laps: usize,
    /// Iterations measured.
    pub measured_laps: usize,
    /// `ModelOnly` for timing sweeps, `Full` when bytes must be real.
    pub mode: DataMode,
}

impl ExchangeConfig {
    /// The defaults used by the figure harnesses: one warm-up iteration,
    /// one measured iteration (the simulation is deterministic, so the
    /// paper's 500-iteration averaging collapses to a single warm lap),
    /// timing-only memory.
    pub fn new(platform: Platform, scheme: SchemeKind, workload: Workload, n_msgs: usize) -> Self {
        ExchangeConfig {
            platform,
            scheme,
            workload,
            n_msgs,
            warmup_laps: 1,
            measured_laps: 1,
            mode: DataMode::ModelOnly,
        }
    }
}

/// Results of one measurement.
#[derive(Debug, Clone)]
pub struct ExchangeOutcome {
    /// Mean makespan of the measured iterations — the paper's reported
    /// latency.
    pub latency: Duration,
    /// Individual measured-iteration makespans.
    pub lap_latencies: Vec<Duration>,
    /// Per-iteration cost buckets, summed over both ranks and averaged
    /// over measured iterations (Fig. 11).
    pub breakdown: Breakdown,
    /// Fusion scheduler statistics (rank 0), if the scheme fuses.
    pub sched: Option<SchedStats>,
    /// Total kernel launches across both GPUs over the whole run.
    pub kernels: u64,
}

/// Run one bulk-exchange measurement.
pub fn run_exchange(cfg: &ExchangeConfig) -> ExchangeOutcome {
    run_exchange_with(cfg, None).0
}

/// Run one bulk-exchange measurement with a live telemetry recorder.
///
/// The recorder is shared: the cluster's events land in the caller's
/// `Telemetry` handle (tagged per rank internally). Also returns the
/// per-rank whole-run [`Breakdown`]s — the external ledger a caller can
/// [`fusedpack_telemetry::reconcile`] the recorded timeline against.
pub fn run_exchange_traced(
    cfg: &ExchangeConfig,
    telemetry: &Telemetry,
) -> (ExchangeOutcome, Vec<Breakdown>) {
    run_exchange_with(cfg, Some(telemetry))
}

fn run_exchange_with(
    cfg: &ExchangeConfig,
    telemetry: Option<&Telemetry>,
) -> (ExchangeOutcome, Vec<Breakdown>) {
    let laps = cfg.warmup_laps + cfg.measured_laps;
    let ((p0, _), (p1, _)) = bulk_exchange_programs(&cfg.workload, cfg.n_msgs, laps, 7);
    let mut builder = ClusterBuilder::new(cfg.platform.clone(), cfg.scheme.clone())
        .data_mode(cfg.mode)
        .add_rank(0, p0)
        .add_rank(1, p1);
    if let Some(t) = telemetry {
        builder = builder.telemetry(t.clone());
    }
    let mut cluster = builder.build();
    let report = cluster.run();

    let measured: Vec<Duration> = (cfg.warmup_laps..laps)
        .map(|i| report.lap_makespan(i))
        .collect();
    let mean = if measured.is_empty() {
        Duration::ZERO
    } else {
        measured.iter().copied().sum::<Duration>() / measured.len() as u64
    };

    // Sum both ranks' per-lap breakdowns over the measured laps, averaged.
    let mut breakdown = Breakdown::default();
    for rank_laps in &report.lap_breakdowns {
        for lap in rank_laps.iter().skip(cfg.warmup_laps) {
            breakdown += *lap;
        }
    }
    let breakdown = if cfg.measured_laps > 0 {
        scale_breakdown(&breakdown, cfg.measured_laps as u64)
    } else {
        breakdown
    };

    let outcome = ExchangeOutcome {
        latency: mean,
        lap_latencies: measured,
        breakdown,
        sched: report.sched_stats[0],
        kernels: report.kernels_launched.iter().sum(),
    };
    (outcome, report.breakdowns)
}

/// Results of one fault-injected (or fault-free reference) measurement.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Mean makespan of the measured iterations.
    pub latency: Duration,
    /// Individual measured-iteration makespans.
    pub lap_latencies: Vec<Duration>,
    /// Fusion scheduler statistics (rank 0), if the scheme fuses.
    pub sched: Option<SchedStats>,
    /// What the fault plan did to this run.
    pub faults: FaultSummary,
    /// Past-event clamps the event queue had to repair. Must be zero on a
    /// fault-free run — the chaos report fails its baseline otherwise.
    pub clamps: ClampStats,
    /// FNV-1a over both ranks' receive buffers (rank 0's first), the
    /// end-to-end data-integrity fingerprint. Only meaningful with
    /// `DataMode::Full`; a faulty run recovered correctly iff its checksum
    /// equals the fault-free run's.
    pub checksum: u64,
}

/// Run one bulk-exchange measurement under an optional fault plan,
/// returning latency plus integrity evidence (checksum, fault summary,
/// clamp stats). Pass `cfg.mode = DataMode::Full` so the checksum covers
/// real bytes.
pub fn run_exchange_chaos(cfg: &ExchangeConfig, plan: Option<FaultPlan>) -> ChaosOutcome {
    let laps = cfg.warmup_laps + cfg.measured_laps;
    let ((p0, b0), (p1, b1)) = bulk_exchange_programs(&cfg.workload, cfg.n_msgs, laps, 7);
    let mut builder = ClusterBuilder::new(cfg.platform.clone(), cfg.scheme.clone())
        .data_mode(cfg.mode)
        .add_rank(0, p0)
        .add_rank(1, p1);
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    let mut cluster = builder.build();
    let report = cluster.run();

    let measured: Vec<Duration> = (cfg.warmup_laps..laps)
        .map(|i| report.lap_makespan(i))
        .collect();
    let mean = if measured.is_empty() {
        Duration::ZERO
    } else {
        measured.iter().copied().sum::<Duration>() / measured.len() as u64
    };

    let mut checksum = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for (rank, bufs) in [(RankId(0), &b0), (RankId(1), &b1)] {
        for &buf in &bufs.recv {
            for byte in cluster.rank_buffer(rank, buf) {
                checksum ^= byte as u64;
                checksum = checksum.wrapping_mul(0x0100_0000_01b3);
            }
        }
    }

    if report.event_clamps.count > 0 {
        // A clamp means the simulator rewrote a computed timestamp —
        // harmless for liveness but a red flag for timing fidelity. Shout
        // on stderr so table/CSV bytes stay stable.
        eprintln!(
            "WARNING: {} event clamp(s) (total skew {}) during a chaos cell — \
             timing fidelity is degraded",
            report.event_clamps.count, report.event_clamps.total_skew
        );
    }

    ChaosOutcome {
        latency: mean,
        lap_latencies: measured,
        sched: report.sched_stats[0],
        faults: report.fault_summary,
        clamps: report.event_clamps,
        checksum,
    }
}

/// Results of one phase-changing measurement ([`run_phase_shift`]).
#[derive(Debug, Clone)]
pub struct PhaseShiftOutcome {
    /// Sum of every lap's makespan — the end-to-end cost of the whole
    /// phase-changing run (no warm-up discard: adapting through the cold
    /// start and the phase change is exactly what is being measured).
    pub total: Duration,
    /// Per-lap makespans, phase 1 laps first.
    pub lap_latencies: Vec<Duration>,
    /// Fusion scheduler statistics (rank 0), if the scheme fuses.
    pub sched: Option<SchedStats>,
}

/// Run a bulk exchange whose datatype shifts from workload `a` to workload
/// `b` after `laps_per_phase` iterations (see
/// [`crate::bulk::phase_shift_programs`]).
pub fn run_phase_shift(
    platform: Platform,
    scheme: SchemeKind,
    a: &Workload,
    b: &Workload,
    n_msgs: usize,
    laps_per_phase: usize,
) -> PhaseShiftOutcome {
    run_phase_shift_traced(platform, scheme, a, b, n_msgs, laps_per_phase, None)
}

/// [`run_phase_shift`] with an optional live telemetry recorder.
#[allow(clippy::too_many_arguments)]
pub fn run_phase_shift_traced(
    platform: Platform,
    scheme: SchemeKind,
    a: &Workload,
    b: &Workload,
    n_msgs: usize,
    laps_per_phase: usize,
    telemetry: Option<&Telemetry>,
) -> PhaseShiftOutcome {
    let (p0, p1) = phase_shift_programs(a, b, n_msgs, laps_per_phase, 7);
    let mut builder = ClusterBuilder::new(platform, scheme)
        .data_mode(DataMode::ModelOnly)
        .add_rank(0, p0)
        .add_rank(1, p1);
    if let Some(t) = telemetry {
        builder = builder.telemetry(t.clone());
    }
    let mut cluster = builder.build();
    let report = cluster.run();

    let laps = 2 * laps_per_phase;
    let lap_latencies: Vec<Duration> = (0..laps).map(|i| report.lap_makespan(i)).collect();
    PhaseShiftOutcome {
        total: lap_latencies.iter().copied().sum(),
        lap_latencies,
        sched: report.sched_stats[0],
    }
}

fn scale_breakdown(b: &Breakdown, div: u64) -> Breakdown {
    Breakdown {
        pack: b.pack / div,
        launch: b.launch / div,
        scheduling: b.scheduling / div,
        sync: b.sync / div,
        comm: b.comm / div,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::milc::milc_su3_zdown;
    use crate::nas::nas_mg_y;
    use crate::specfem::{specfem3d_cm, specfem3d_oc};

    fn run(scheme: SchemeKind, workload: Workload, n: usize) -> ExchangeOutcome {
        run_exchange(&ExchangeConfig::new(
            Platform::lassen(),
            scheme,
            workload,
            n,
        ))
    }

    #[test]
    fn fusion_wins_bulk_sparse_exchange() {
        // The Fig. 9 headline at 16 buffers.
        let fusion = run(SchemeKind::fusion_default(), specfem3d_cm(1200), 16);
        let sync = run(SchemeKind::GpuSync, specfem3d_cm(1200), 16);
        let async_ = run(SchemeKind::GpuAsync, specfem3d_cm(1200), 16);
        let hybrid = run(SchemeKind::CpuGpuHybrid, specfem3d_cm(1200), 16);
        assert!(fusion.latency < sync.latency);
        assert!(fusion.latency < async_.latency);
        assert!(fusion.latency < hybrid.latency);
        let speedup = sync.latency.as_nanos() as f64 / fusion.latency.as_nanos() as f64;
        assert!(speedup > 2.0, "expected a solid speedup, got {speedup:.2}x");
    }

    #[test]
    fn hybrid_wins_small_dense_on_lassen() {
        // The Fig. 10 / Fig. 12(c) exception: small dense MILC messages on
        // NVLink-attached POWER9.
        let w = milc_su3_zdown(4);
        let hybrid = run(SchemeKind::CpuGpuHybrid, w.clone(), 16);
        let fusion = run(SchemeKind::fusion_default(), w, 16);
        assert!(
            hybrid.latency < fusion.latency,
            "hybrid {:?} should beat fusion {:?} for small dense on Lassen",
            hybrid.latency,
            fusion.latency
        );
    }

    #[test]
    fn fusion_wins_large_dense() {
        // Fig. 12(d): large NAS messages leave the hybrid sweet spot.
        let w = nas_mg_y(384);
        let fusion = run(SchemeKind::fusion_default(), w.clone(), 16);
        let hybrid = run(SchemeKind::CpuGpuHybrid, w, 16);
        assert!(fusion.latency < hybrid.latency);
    }

    #[test]
    fn single_message_latencies_are_microseconds() {
        // Sanity on absolute scale: a single sparse message should cost
        // tens of microseconds, not milliseconds.
        let out = run(SchemeKind::fusion_default(), specfem3d_oc(2000), 1);
        assert!(out.latency.as_micros_f64() > 5.0, "{}", out.latency);
        assert!(out.latency.as_micros_f64() < 200.0, "{}", out.latency);
    }

    #[test]
    fn adaptive_scheme_runs_and_adjusts_on_phase_shift() {
        let out = run_phase_shift(
            Platform::lassen(),
            SchemeKind::fusion_adaptive(),
            &specfem3d_cm(1200),
            &nas_mg_y(384),
            16,
            6,
        );
        let stats = out.sched.expect("adaptive fusion keeps sched stats");
        assert!(stats.kernels_launched > 0);
        assert!(
            stats.threshold_adjusts > 0,
            "the controller should move at least once across a sparse→dense shift"
        );
        assert!(
            stats.threshold_adjusts <= stats.kernels_launched,
            "at most one adjustment per flush"
        );
        assert_eq!(out.lap_latencies.len(), 12);
    }

    #[test]
    fn static_fusion_never_adjusts() {
        let out = run_phase_shift(
            Platform::lassen(),
            SchemeKind::fusion_default(),
            &specfem3d_cm(1200),
            &nas_mg_y(384),
            8,
            2,
        );
        assert_eq!(out.sched.expect("fusion stats").threshold_adjusts, 0);
    }

    #[test]
    fn outcome_carries_diagnostics() {
        let out = run(SchemeKind::fusion_default(), specfem3d_oc(500), 8);
        let stats = out.sched.expect("fusion stats");
        assert!(stats.enqueued >= 16, "8 packs + 8 unpacks per rank");
        assert!(out.kernels > 0);
        assert!(out.breakdown.total().as_nanos() > 0);
    }
}
