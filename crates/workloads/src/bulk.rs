//! Bulk-exchange program builder.
//!
//! Two neighbor ranks exchange `n_msgs` non-contiguous buffers each way
//! per iteration — the communication pattern of the paper's §V-B
//! (Figs. 9/10 sweep `n_msgs` from 1 to 16) and §V-C (the stressed 3-D
//! halo exchange: 16 buffers each way = 32 non-blocking operations per
//! rank).

use crate::Workload;
use fusedpack_mpi::program::BufInit;
use fusedpack_mpi::{AppOp, BufId, Program, RankId, TypeSlot};

/// Per-rank buffer handles returned alongside the programs, so callers
/// (tests) can verify received data.
#[derive(Debug, Clone)]
pub struct ExchangeBuffers {
    pub send: Vec<BufId>,
    pub recv: Vec<BufId>,
}

/// Build the symmetric two-rank bulk-exchange programs.
///
/// Each rank runs `laps` iterations of: post `n_msgs` receives, post
/// `n_msgs` sends, `Waitall` — Algorithm 3 of the paper (MPI-level
/// implicit pack/unpack). Send buffers are seeded deterministically from
/// `seed_base` so receivers' contents can be checked.
pub fn bulk_exchange_programs(
    workload: &Workload,
    n_msgs: usize,
    laps: usize,
    seed_base: u64,
) -> ((Program, ExchangeBuffers), (Program, ExchangeBuffers)) {
    assert!(n_msgs >= 1 && laps >= 1);
    let buf_len = workload.footprint().max(1);

    let build = |seed: u64, peer: RankId| {
        let mut p = Program::new();
        let send: Vec<BufId> = (0..n_msgs)
            .map(|i| p.buffer(buf_len, BufInit::Random(seed + i as u64)))
            .collect();
        let recv: Vec<BufId> = (0..n_msgs)
            .map(|_| p.buffer(buf_len, BufInit::Zero))
            .collect();
        p.push(AppOp::Commit {
            slot: TypeSlot(0),
            desc: workload.desc.clone(),
        });
        for _ in 0..laps {
            p.push(AppOp::ResetTimer);
            for (i, &rbuf) in recv.iter().enumerate() {
                p.push(AppOp::Irecv {
                    buf: rbuf,
                    ty: TypeSlot(0),
                    count: workload.count,
                    src: peer,
                    tag: i as u32,
                });
            }
            for (i, &sbuf) in send.iter().enumerate() {
                p.push(AppOp::Isend {
                    buf: sbuf,
                    ty: TypeSlot(0),
                    count: workload.count,
                    dst: peer,
                    tag: i as u32,
                });
            }
            p.push(AppOp::Waitall);
            p.push(AppOp::RecordLap);
        }
        (p, ExchangeBuffers { send, recv })
    };

    (
        build(seed_base, RankId(1)),
        build(seed_base + 1000, RankId(0)),
    )
}

/// Build two-rank programs whose datatype *changes mid-run*: the first
/// `laps_per_phase` iterations exchange workload `a`, the rest exchange
/// workload `b` (e.g. a sparse seismic halo followed by a dense stencil
/// face). This is the stress case for the online adaptive threshold
/// controller — a single static threshold cannot be right for both phases.
pub fn phase_shift_programs(
    a: &Workload,
    b: &Workload,
    n_msgs: usize,
    laps_per_phase: usize,
    seed_base: u64,
) -> (Program, Program) {
    assert!(n_msgs >= 1 && laps_per_phase >= 1);
    let buf_len = a.footprint().max(b.footprint()).max(1);

    let build = |seed: u64, peer: RankId| {
        let mut p = Program::new();
        let send: Vec<BufId> = (0..n_msgs)
            .map(|i| p.buffer(buf_len, BufInit::Random(seed + i as u64)))
            .collect();
        let recv: Vec<BufId> = (0..n_msgs)
            .map(|_| p.buffer(buf_len, BufInit::Zero))
            .collect();
        p.push(AppOp::Commit {
            slot: TypeSlot(0),
            desc: a.desc.clone(),
        });
        p.push(AppOp::Commit {
            slot: TypeSlot(1),
            desc: b.desc.clone(),
        });
        for (slot, w) in [(TypeSlot(0), a), (TypeSlot(1), b)] {
            for _ in 0..laps_per_phase {
                p.push(AppOp::ResetTimer);
                for (i, &rbuf) in recv.iter().enumerate() {
                    p.push(AppOp::Irecv {
                        buf: rbuf,
                        ty: slot,
                        count: w.count,
                        src: peer,
                        tag: i as u32,
                    });
                }
                for (i, &sbuf) in send.iter().enumerate() {
                    p.push(AppOp::Isend {
                        buf: sbuf,
                        ty: slot,
                        count: w.count,
                        dst: peer,
                        tag: i as u32,
                    });
                }
                p.push(AppOp::Waitall);
                p.push(AppOp::RecordLap);
            }
        }
        p
    };

    (
        build(seed_base, RankId(1)),
        build(seed_base + 1000, RankId(0)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specfem::specfem3d_oc;

    #[test]
    fn programs_have_expected_op_counts() {
        let w = specfem3d_oc(100);
        let ((p0, b0), (p1, _)) = bulk_exchange_programs(&w, 16, 2, 42);
        // 16 sends + 16 recvs per lap, 2 laps.
        assert_eq!(p0.comm_op_count(), 64);
        assert_eq!(p1.comm_op_count(), 64);
        assert_eq!(b0.send.len(), 16);
        assert_eq!(b0.recv.len(), 16);
        // Buffers: 32 per rank.
        assert_eq!(p0.buffers.len(), 32);
    }

    #[test]
    fn paper_halo_stress_is_32_ops_per_rank() {
        let w = specfem3d_oc(100);
        let ((p0, _), _) = bulk_exchange_programs(&w, 16, 1, 0);
        assert_eq!(p0.comm_op_count(), 32, "16 isend + 16 irecv");
    }

    #[test]
    fn phase_shift_runs_both_types() {
        let a = specfem3d_oc(100);
        let b = crate::nas::nas_mg_y(32);
        let (p0, p1) = phase_shift_programs(&a, &b, 8, 3, 11);
        // 8 sends + 8 recvs per lap, 3 laps per phase, 2 phases.
        assert_eq!(p0.comm_op_count(), 96);
        assert_eq!(p1.comm_op_count(), 96);
        // Both datatypes are committed once, up front.
        let commits = p0
            .ops
            .iter()
            .filter(|op| matches!(op, AppOp::Commit { .. }))
            .count();
        assert_eq!(commits, 2);
    }
}
