//! MILC lattice-QCD boundary layout (dense, nested vectors).
//!
//! MILC operates on a 4-D space-time lattice of su3 matrices. Exchanging
//! the z-"down" face gathers, for each (t, y) pair, a contiguous run of x
//! sites — ddtbench models it as *nested vectors* over the su3 element
//! type. Block sizes are hundreds of bytes and block counts stay well
//! under a thousand for practical local volumes: the paper's "dense"
//! class with small messages (the Fig. 10/12(c) regime where the
//! CPU-GPU-Hybrid GDRCopy path shines on Lassen).

use crate::{LayoutClass, Workload};
use fusedpack_datatype::TypeBuilder;

/// Bytes of one su3 "site" worth of data on the face: a 3×3 complex-double
/// matrix is 144 bytes; ddtbench's su3_zdown moves half-matrices in places,
/// we keep the full matrix as 9 complex doubles.
const SU3_COMPLEX: u64 = 9;

/// `MILC_su3_zdown` for a local lattice of extent `l` per dimension: for
/// each of the `l` t-slices, a vector over `l` y-rows of `l/2` contiguous
/// even-site su3 matrices (checkerboarded x-dimension).
pub fn milc_su3_zdown(l: u64) -> Workload {
    assert!(l >= 2, "lattice extent must be at least 2");
    let half_x = (l / 2).max(1);
    // One su3 matrix: 9 complex doubles, contiguous.
    let su3 = TypeBuilder::contiguous(SU3_COMPLEX, TypeBuilder::complex());
    // One z-plane of the face: l y-rows, each a run of half_x contiguous
    // even-site matrices out of a full x-row of l matrices.
    let plane = TypeBuilder::vector(l, half_x, l, su3.clone());
    // t-slices: l planes, each one z-extent (l*l sites) apart in bytes.
    let site_bytes = su3.extent();
    let desc = TypeBuilder::hvector(l, 1, l * l * site_bytes, plane);
    Workload {
        name: "MILC",
        class: LayoutClass::Dense,
        desc,
        count: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_structure_is_dense() {
        let w = milc_su3_zdown(8);
        // l*l rows of half_x contiguous matrices: 64 blocks.
        assert_eq!(w.blocks(), 64);
        let avg = w.packed_bytes() as f64 / w.blocks() as f64;
        // half_x=4 matrices * 144B = 576B per block.
        assert_eq!(avg as u64, 4 * SU3_COMPLEX * 16);
    }

    #[test]
    fn payload_scales_with_lattice_volume() {
        let small = milc_su3_zdown(4);
        let big = milc_su3_zdown(16);
        // Face volume scales as l^2 * l/2 = l^3/2: 16^3/4^3 = 64x.
        assert_eq!(big.packed_bytes(), 64 * small.packed_bytes());
    }

    #[test]
    fn small_lattice_is_in_hybrid_sweet_spot() {
        // The Fig. 12(c) regime: small dense message.
        let w = milc_su3_zdown(4);
        assert!(w.packed_bytes() < 64 * 1024);
        assert!(w.blocks() < 512);
    }
}
