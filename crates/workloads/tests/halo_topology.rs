//! Halo-exchange × topology integration: telemetry hop spans must
//! reconcile **exactly** with the network's per-hop congestion counters,
//! and topology-attached runs must stay deterministic.

use fusedpack_gpu::DataMode;
use fusedpack_mpi::{ClusterBuilder, SchemeKind};
use fusedpack_net::{Hierarchy, Platform, TopologyHandle};
use fusedpack_telemetry::{Payload, Telemetry};
use fusedpack_workloads::halo::{halo_programs, HaloConfig, HaloGrid};
use fusedpack_workloads::specfem::specfem3d_cm;
use fusedpack_workloads::{run_halo, run_halo_traced};
use std::collections::HashMap;
use std::sync::Arc;

fn lassen_topo(nodes: u32) -> TopologyHandle {
    Arc::new(Hierarchy::lassen_like(nodes))
}

fn abci_topo(nodes: u32) -> TopologyHandle {
    Arc::new(Hierarchy::abci_like(nodes))
}

fn small_cfg(topo: Option<TopologyHandle>) -> HaloConfig {
    let mut cfg = HaloConfig::new(
        Platform::lassen(),
        SchemeKind::fusion_default(),
        specfem3d_cm(400),
        HaloGrid::new_3d(2, 2, 2),
        2,
    );
    cfg.topology = topo;
    cfg
}

/// Sum the bytes of every `HopTransfer` span per hop index.
fn hop_bytes_from_telemetry(tele: &Telemetry) -> HashMap<u32, u64> {
    let mut sums: HashMap<u32, u64> = HashMap::new();
    for e in &tele.snapshot().events {
        if let Payload::HopTransfer { hop, bytes } = e.payload {
            *sums.entry(hop).or_default() += bytes;
        }
    }
    sums
}

/// Per-hop telemetry byte sums equal the network's per-hop congestion
/// counters, hop by hop — nothing double-counted, nothing dropped.
#[test]
fn hop_spans_reconcile_with_congestion_counters() {
    for topo in [lassen_topo(2), abci_topo(2)] {
        let name = topo.name();
        let tele = Telemetry::enabled();
        let grid = HaloGrid::new_3d(2, 2, 2);
        let workload = specfem3d_cm(400);
        let programs = halo_programs(&grid, &workload, 2, 2, 7);
        let mut builder = ClusterBuilder::new(Platform::lassen(), SchemeKind::fusion_default())
            .data_mode(DataMode::ModelOnly)
            .topology(topo)
            .telemetry(tele.clone());
        for (rank, (program, _)) in programs.into_iter().enumerate() {
            builder = builder.add_rank(rank as u32 / 4, program);
        }
        let mut cluster = builder.build();
        cluster.run();

        let stats = cluster.topo_hop_stats().expect("topology attached");
        let from_tele = hop_bytes_from_telemetry(&tele);
        assert!(
            from_tele.values().sum::<u64>() > 0,
            "{name}: halo traffic crossed hops"
        );
        for (i, stat) in stats.iter().enumerate() {
            assert_eq!(
                stat.bytes,
                from_tele.get(&(i as u32)).copied().unwrap_or(0),
                "{name}: hop {i} ({}) diverges from telemetry",
                stat.kind
            );
        }
    }
}

/// The aggregate `hop_bytes` the halo driver reports is the same total
/// the telemetry spans carry.
#[test]
fn driver_hop_totals_match_telemetry() {
    let tele = Telemetry::enabled();
    let out = run_halo_traced(&small_cfg(Some(lassen_topo(2))), &tele);
    let tele_total: u64 = hop_bytes_from_telemetry(&tele).values().sum();
    assert!(out.hop_bytes > 0);
    assert_eq!(out.hop_bytes, tele_total);
}

/// Topology-attached halo runs are bit-deterministic: identical latency,
/// event count, and hop accounting on every run.
#[test]
fn topology_runs_are_deterministic() {
    let a = run_halo(&small_cfg(Some(abci_topo(2))));
    let b = run_halo(&small_cfg(Some(abci_topo(2))));
    assert_eq!(a.latency, b.latency);
    assert_eq!(a.events, b.events);
    assert_eq!(a.hop_bytes, b.hop_bytes);
    assert_eq!(a.busiest_hop_busy, b.busiest_hop_busy);
    assert_eq!(a.lap_latencies, b.lap_latencies);
}

/// The two machine models genuinely differ: same workload, same grid,
/// different hop accounting and timing.
#[test]
fn machines_shape_the_same_exchange_differently() {
    let lassen = run_halo(&small_cfg(Some(lassen_topo(2))));
    let abci = run_halo(&small_cfg(Some(abci_topo(2))));
    // ABCI's inter-node routes bounce through the host complex, so the
    // same traffic crosses more hops and the exchange runs slower.
    assert!(abci.hop_bytes > lassen.hop_bytes);
    assert!(abci.latency > lassen.latency);
}

/// No topology attached: identical timing to the topology-free legacy
/// path is covered by the golden-report guard; here just check the hop
/// counters stay silent.
#[test]
fn flat_runs_report_no_hop_traffic() {
    let out = run_halo(&small_cfg(None));
    assert_eq!(out.hop_bytes, 0);
    assert!(out.latency.as_nanos() > 0);
}
