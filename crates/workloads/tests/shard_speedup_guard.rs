//! Release-mode guard for the sharded event loop's headline claim: on a
//! 4096-rank torus, four shards must (a) reproduce the single-queue run
//! byte for byte, and (b) actually be faster on a machine with cores to
//! spare.
//!
//! Correctness is asserted unconditionally. The wall-clock half follows
//! the `wheel_bench_guard` convention: absolute times vary by host, so
//! the guard is *relative* and in-process — interleaved timed rounds of
//! the same cluster at 1 vs 4 shards, compared by median. It only runs
//! where `available_parallelism() >= 4`; on smaller hosts (CI containers
//! are often single-core) a conservative-window loop has no cores to
//! win with, and unoptimised debug timing proves nothing, so debug
//! builds skip the whole file.

#![cfg(not(debug_assertions))]

use fusedpack_gpu::DataMode;
use fusedpack_mpi::{ClusterBuilder, RunReport, SchemeKind};
use fusedpack_net::{Hierarchy, Platform};
use fusedpack_workloads::halo::halo_programs;
use fusedpack_workloads::specfem::specfem3d_cm;
use fusedpack_workloads::HaloGrid;
use std::sync::Arc;
use std::time::Instant;

/// The BENCH_hotpaths.json `contended_transmit_64x_4096_ranks` scale: a
/// 16x16x16 periodic torus over 1024 Lassen nodes.
const GRID: [u32; 3] = [16, 16, 16];
const LAPS: usize = 1;

/// Build the 4096-rank cluster and run it once; returns the report plus
/// the hop table and order-violation count.
fn run_torus(shards: u32) -> (RunReport, Vec<(u64, u64)>, u64) {
    let grid = HaloGrid::new_3d(GRID[0], GRID[1], GRID[2]);
    let platform = Platform::lassen();
    let gpus_per_node = platform.gpus_per_node.max(1);
    let nodes = grid.ranks().div_ceil(gpus_per_node);
    let programs = halo_programs(&grid, &specfem3d_cm(200), 1, LAPS, 7);
    let mut builder = ClusterBuilder::new(platform, SchemeKind::fusion_default())
        .data_mode(DataMode::ModelOnly)
        .shards(shards)
        .topology(Arc::new(Hierarchy::lassen_like(nodes)));
    for (rank, (program, _)) in programs.into_iter().enumerate() {
        builder = builder.add_rank(rank as u32 / gpus_per_node, program);
    }
    let mut cluster = builder.build();
    let report = cluster.run();
    let hops: Vec<(u64, u64)> = cluster
        .topo_hop_stats()
        .expect("topology attached")
        .iter()
        .map(|h| (h.bytes, h.busy.as_nanos()))
        .collect();
    let violations = cluster.topo_order_violations().unwrap_or(0);
    (report, hops, violations)
}

/// Wall-clock of one full run at `shards`, in seconds.
fn timed_round(shards: u32) -> f64 {
    let start = Instant::now();
    std::hint::black_box(run_torus(shards));
    start.elapsed().as_secs_f64()
}

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

#[test]
fn four_shards_reproduce_and_beat_single_queue_on_4096_ranks() {
    // Byte-identity first: no timing claim matters if the decomposition
    // changes the simulation.
    let (single, single_hops, single_viol) = run_torus(1);
    let (sharded, sharded_hops, sharded_viol) = run_torus(4);
    assert!(sharded.shard.barriers > 0, "coordinator must engage");
    assert_eq!(single_viol, 0);
    assert_eq!(sharded_viol, 0, "per-hop transmit starts regressed");
    assert_eq!(single.events_processed, sharded.events_processed);
    for lap in 0..LAPS {
        assert_eq!(single.lap_makespan(lap), sharded.lap_makespan(lap));
    }
    assert_eq!(
        single_hops, sharded_hops,
        "per-hop byte/busy tables diverged"
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        eprintln!(
            "shard_speedup_guard: byte-identity verified; skipping the wall-clock \
             half on a {cores}-core host (needs >= 4)"
        );
        return;
    }

    // Interleave the sides so host-speed drift hits both equally.
    let mut single_s = Vec::new();
    let mut sharded_s = Vec::new();
    for _ in 0..3 {
        single_s.push(timed_round(1));
        sharded_s.push(timed_round(4));
    }
    let single_t = median(single_s);
    let sharded_t = median(sharded_s);
    assert!(
        sharded_t * 2.0 <= single_t,
        "4 shards ({sharded_t:.2}s) must run the 4096-rank torus >= 2x faster \
         than the single queue ({single_t:.2}s)"
    );
}
