//! Typed transfer errors.
//!
//! The protocol engine historically panicked on any state it did not
//! expect. Under fault injection (duplicate completions, lost flags,
//! exhausted rings) several of those states are *reachable*, so the
//! guarded paths now classify what went wrong instead of tearing the
//! simulation down. Genuine invariant violations — states no fault can
//! produce — remain `debug_assert!`s.

use fusedpack_sim::FaultSite;
use std::fmt;

/// Why a transfer step could not proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferError {
    /// A payload arrived for a receive whose staging buffer was never
    /// allocated (spurious or duplicated delivery).
    StagingMissing,
    /// A completion referenced a send slot that no longer exists (stale
    /// CQE after the epoch's requests were freed).
    UnknownSend,
    /// A completion referenced a fusion UID with no owning operation
    /// (duplicate cooperative-group signal).
    UnknownRequest,
    /// The fusion request ring had no free slot.
    RingFull,
    /// The retry protocol gave up: the per-operation deadline or attempt
    /// budget was exhausted at `site`.
    Deadline {
        /// The fault site that kept failing.
        site: FaultSite,
        /// Attempts consumed before giving up.
        attempts: u32,
    },
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferError::StagingMissing => write!(f, "payload arrived without staging"),
            TransferError::UnknownSend => write!(f, "completion for unknown send"),
            TransferError::UnknownRequest => write!(f, "completion for unknown fusion request"),
            TransferError::RingFull => write!(f, "fusion request ring exhausted"),
            TransferError::Deadline { site, attempts } => {
                write!(
                    f,
                    "retry budget exhausted at {site} after {attempts} attempts"
                )
            }
        }
    }
}

impl std::error::Error for TransferError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_site() {
        let e = TransferError::Deadline {
            site: FaultSite::LinkDrop,
            attempts: 5,
        };
        let s = e.to_string();
        assert!(s.contains("link_drop"), "{s}");
        assert!(s.contains('5'), "{s}");
    }
}
