//! The pluggable scheme registry: every datatype-processing scheme is
//! described once here and constructed by name everywhere else.
//!
//! Figure harnesses, chaos grids, and test sweeps enumerate
//! [`SchemeRegistry::global`] (or resolve an explicit legend order with
//! [`SchemeRegistry::by_names`]) instead of hard-coding `SchemeKind`
//! lists, so adding a sixth scheme is one engine module plus one
//! descriptor — zero dispatch sites.
//!
//! This module is also, together with engine construction, the *only*
//! place allowed to match on [`SchemeKind`]: [`engine_for`] maps each
//! variant to its [`SchemeEngine`](crate::cluster::schemes::SchemeEngine)
//! strategy object, and the label/cache accessors live here beside it.

use crate::cluster::schemes::{
    FusionEngine, GpuAsyncEngine, GpuSyncEngine, HybridEngine, NaiveEngine, SchemeEngine,
};
use crate::scheme::{NaiveFlavor, SchemeKind};
use fusedpack_core::FusionConfig;
use fusedpack_net::platform::Platform;
use std::sync::Arc;

/// One registered scheme: identity, paper metadata, and a constructor.
pub struct SchemeDescriptor {
    /// Stable CLI/registry name (kebab-case).
    pub name: &'static str,
    /// Display label matching the paper's legends.
    pub label: &'static str,
    /// One-line description of the design.
    pub summary: &'static str,
    /// Does this scheme keep a layout cache (Table I)?
    pub has_layout_cache: bool,
    make: fn() -> SchemeKind,
}

impl SchemeDescriptor {
    /// Construct the scheme this descriptor registers.
    pub fn make(&self) -> SchemeKind {
        (self.make)()
    }
}

/// The registered schemes, in Table-I order.
static ENTRIES: &[SchemeDescriptor] = &[
    SchemeDescriptor {
        name: "gpu-sync",
        label: "GPU-Sync",
        summary: "pack kernel + cudaStreamSynchronize per message [8, 22]",
        has_layout_cache: false,
        make: || SchemeKind::GpuSync,
    },
    SchemeDescriptor {
        name: "gpu-async",
        label: "GPU-Async",
        summary: "multi-stream pack kernels with event record/query completion [23]",
        has_layout_cache: false,
        make: || SchemeKind::GpuAsync,
    },
    SchemeDescriptor {
        name: "cpu-gpu-hybrid",
        label: "CPU-GPU-Hybrid",
        summary: "GDRCopy CPU path for dense/small layouts, cached-layout kernels otherwise [24]",
        has_layout_cache: true,
        make: || SchemeKind::CpuGpuHybrid,
    },
    SchemeDescriptor {
        name: "proposed",
        label: "Proposed",
        summary: "the paper's dynamic kernel fusion at the default 512 KB threshold",
        has_layout_cache: true,
        make: SchemeKind::fusion_default,
    },
    SchemeDescriptor {
        name: "proposed-adaptive",
        label: "Proposed-Adaptive",
        summary: "kernel fusion + online threshold control + cost-guided partitioning",
        has_layout_cache: true,
        make: SchemeKind::fusion_adaptive,
    },
    SchemeDescriptor {
        name: "spectrum-mpi",
        label: "SpectrumMPI",
        summary: "naive per-block staged copies, IBM Spectrum MPI constants",
        has_layout_cache: false,
        make: || SchemeKind::NaiveCopy(NaiveFlavor::SpectrumMpi),
    },
    SchemeDescriptor {
        name: "open-mpi",
        label: "OpenMPI",
        summary: "naive per-block staged copies, OpenMPI + UCX constants",
        has_layout_cache: false,
        make: || SchemeKind::NaiveCopy(NaiveFlavor::OpenMpi),
    },
    SchemeDescriptor {
        name: "mvapich2-gdr",
        label: "MVAPICH2-GDR",
        summary: "adaptive per-message choice between the hybrid CPU path and GPU-Sync",
        has_layout_cache: true,
        make: || SchemeKind::Adaptive,
    },
];

static GLOBAL: SchemeRegistry = SchemeRegistry { entries: ENTRIES };

/// Name-indexed catalogue of every scheme the stack implements.
pub struct SchemeRegistry {
    entries: &'static [SchemeDescriptor],
}

impl SchemeRegistry {
    /// The process-wide registry of all built-in schemes.
    pub fn global() -> &'static SchemeRegistry {
        &GLOBAL
    }

    /// Every registered descriptor, in Table-I order.
    pub fn all(&self) -> &'static [SchemeDescriptor] {
        self.entries
    }

    /// Look a descriptor up by its registry name.
    pub fn get(&self, name: &str) -> Option<&'static SchemeDescriptor> {
        self.entries.iter().find(|d| d.name == name)
    }

    /// Construct a scheme by name; panics (listing the known names) on an
    /// unknown one — registry names are compile-time constants at every
    /// call site, so a miss is a programming error.
    pub fn create(&self, name: &str) -> SchemeKind {
        match self.get(name) {
            Some(d) => d.make(),
            None => panic!(
                "unknown scheme {name:?}; registered: {:?}",
                self.entries.iter().map(|d| d.name).collect::<Vec<_>>()
            ),
        }
    }

    /// Construct several schemes in the caller's order — figure legends
    /// fix their own row orders, so enumeration order is the caller's.
    pub fn by_names(&self, names: &[&str]) -> Vec<SchemeKind> {
        names.iter().map(|n| self.create(n)).collect()
    }
}

/// Map a scheme to its engine (the strategy object holding the scheme's
/// transfer paths). The single construction-time `SchemeKind` dispatch —
/// after this, the cluster only ever talks to the trait.
pub(crate) fn engine_for(kind: &SchemeKind, platform: &Platform) -> Arc<dyn SchemeEngine> {
    match kind {
        SchemeKind::GpuSync => Arc::new(GpuSyncEngine),
        SchemeKind::GpuAsync => Arc::new(GpuAsyncEngine),
        SchemeKind::CpuGpuHybrid => Arc::new(HybridEngine::new(platform, false)),
        SchemeKind::Adaptive => Arc::new(HybridEngine::new(platform, true)),
        SchemeKind::Fusion(cfg) => Arc::new(FusionEngine::new(cfg.clone(), false)),
        SchemeKind::FusionAdaptive(cfg) => Arc::new(FusionEngine::new(cfg.clone(), true)),
        SchemeKind::NaiveCopy(flavor) => Arc::new(NaiveEngine { flavor: *flavor }),
    }
}

impl SchemeKind {
    /// Short display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::GpuSync => "GPU-Sync",
            SchemeKind::GpuAsync => "GPU-Async",
            SchemeKind::CpuGpuHybrid => "CPU-GPU-Hybrid",
            SchemeKind::Fusion(_) => "Proposed",
            SchemeKind::FusionAdaptive(_) => "Proposed-Adaptive",
            SchemeKind::NaiveCopy(NaiveFlavor::SpectrumMpi) => "SpectrumMPI",
            SchemeKind::NaiveCopy(NaiveFlavor::OpenMpi) => "OpenMPI",
            SchemeKind::Adaptive => "MVAPICH2-GDR",
        }
    }

    /// Does this scheme keep a layout cache (Table I)?
    pub fn has_layout_cache(&self) -> bool {
        matches!(
            self,
            SchemeKind::CpuGpuHybrid
                | SchemeKind::Fusion(_)
                | SchemeKind::FusionAdaptive(_)
                | SchemeKind::Adaptive
        )
    }

    /// The fusion configuration, for the two fusion variants.
    pub fn fusion_config(&self) -> Option<&FusionConfig> {
        match self {
            SchemeKind::Fusion(cfg) | SchemeKind::FusionAdaptive(cfg) => Some(cfg),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_descriptor_round_trips() {
        let reg = SchemeRegistry::global();
        for d in reg.all() {
            let scheme = reg.create(d.name);
            assert_eq!(scheme.label(), d.label, "{}", d.name);
            assert_eq!(scheme.has_layout_cache(), d.has_layout_cache, "{}", d.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let reg = SchemeRegistry::global();
        for (i, a) in reg.all().iter().enumerate() {
            for b in &reg.all()[i + 1..] {
                assert_ne!(a.name, b.name);
                assert_ne!(a.label, b.label);
            }
        }
    }

    #[test]
    fn by_names_preserves_caller_order() {
        let schemes = SchemeRegistry::global().by_names(&["proposed", "gpu-sync", "gpu-async"]);
        let labels: Vec<_> = schemes.iter().map(|s| s.label()).collect();
        assert_eq!(labels, ["Proposed", "GPU-Sync", "GPU-Async"]);
    }

    #[test]
    #[should_panic(expected = "unknown scheme")]
    fn unknown_name_panics_with_catalogue() {
        SchemeRegistry::global().create("quantum-teleport");
    }

    #[test]
    fn every_scheme_builds_an_engine() {
        let platform = Platform::lassen();
        for d in SchemeRegistry::global().all() {
            // Construction must not panic for any registered scheme.
            let _ = engine_for(&d.make(), &platform);
        }
    }

    #[test]
    fn fusion_config_accessor() {
        assert!(SchemeKind::GpuSync.fusion_config().is_none());
        let tuned = SchemeKind::fusion_with_threshold(64 * 1024);
        assert_eq!(
            tuned.fusion_config().expect("fusion").threshold_bytes,
            64 * 1024
        );
    }
}
