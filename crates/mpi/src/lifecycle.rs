//! The unified request lifecycle: one explicit state machine for every
//! send and receive, regardless of protocol path.
//!
//! Before this module existed, the progress engine tracked requests with a
//! scatter of booleans (`rts_sent`, `data_issued`, `completed`) plus two
//! overlapping enums (`PackState`, `RecvState`), and each scheme mutated
//! whichever subset it knew about. [`RequestLifecycle`] replaces the flags
//! with a single [`Stage`] progression per role plus two orthogonal
//! facts — packing progress ([`PackState`]) and whether the RTS has gone
//! out — and makes every mutation an explicit [`LifecycleEvent`] whose
//! legality is checked by [`RequestLifecycle::try_apply`].
//!
//! The stage diagram (send left, receive right):
//!
//! ```text
//!   Pending ──Issued──▶ Active          Pending ──Matched──▶ AwaitingData
//!      │  ◀─IssueRetracted─┘               │                      │
//!      │                │                  └──────DataArrived─────┤
//!      └───Completed────┤                                         ▼
//!                       ▼                                       Active
//!                     Done                 Done ◀──Completed──────┘
//! ```
//!
//! `Failed` is reachable from any non-terminal stage via
//! [`LifecycleEvent::Failed`] — the terminal rung for a request whose
//! degradation ladder runs out. The fault paths today always recover
//! (retry, degrade, or absorb), so production runs never produce it, but
//! the state machine — and the property tests — account for it.

use std::collections::VecDeque;
use std::fmt;

/// Packing progress on the sender (or unpacking on the receiver),
/// orthogonal to the protocol [`Stage`]: a send may issue only once its
/// pack is [`PackState::Done`], but an RTS can overlap an in-flight pack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackState {
    NotStarted,
    InFlight,
    Done,
}

/// Which side of the transfer a lifecycle tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    Send,
    Recv,
}

/// Protocol progress of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Send: payload not yet on the wire. Recv: posted, unmatched.
    Pending,
    /// Recv only: matched (CTS sent / RDMA READ issued), payload not here.
    AwaitingData,
    /// Send: payload issued, local completion outstanding. Recv: payload
    /// landed (or DirectIPC mapped), unpack in progress.
    Active,
    /// Terminal: locally complete (send) / data in the user buffer (recv).
    Done,
    /// Terminal: the request's degradation ladder ran out.
    Failed,
}

/// One legal-or-rejected step of a [`RequestLifecycle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// An asynchronous pack/unpack kernel (or staged DMA) was launched.
    PackStarted,
    /// Packing (unpacking) finished; staging holds the packed bytes.
    PackFinished,
    /// The RTS control message went on the wire (send only).
    RtsSent,
    /// The receive matched an RTS and answered it (recv only).
    Matched,
    /// The payload landed in staging / the IPC mapping resolved (recv).
    DataArrived,
    /// The payload was put on the wire (send only; requires a done pack).
    Issued,
    /// A spurious issue was rolled back — a fault-replayed control message
    /// armed `Issued` without a real CTS (send only).
    IssueRetracted,
    /// The request completed (CQE / Fin / unpack landed).
    Completed,
    /// The request failed terminally.
    Failed,
}

/// A rejected [`LifecycleEvent`]: the transition is not in the legal
/// relation for the lifecycle's current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalTransition {
    pub role: Role,
    pub stage: Stage,
    pub pack: PackState,
    pub event: LifecycleEvent,
}

impl fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "illegal {:?} for {:?} request at stage {:?} (pack {:?})",
            self.event, self.role, self.stage, self.pack
        )
    }
}

/// The unified per-request state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestLifecycle {
    role: Role,
    stage: Stage,
    pack: PackState,
    rts_sent: bool,
}

impl RequestLifecycle {
    /// A fresh send: pending, unpacked, no RTS out.
    pub fn send() -> Self {
        RequestLifecycle {
            role: Role::Send,
            stage: Stage::Pending,
            pack: PackState::NotStarted,
            rts_sent: false,
        }
    }

    /// A fresh receive: posted, unmatched.
    pub fn recv() -> Self {
        RequestLifecycle {
            role: Role::Recv,
            stage: Stage::Pending,
            pack: PackState::NotStarted,
            rts_sent: false,
        }
    }

    pub fn role(&self) -> Role {
        self.role
    }

    pub fn stage(&self) -> Stage {
        self.stage
    }

    pub fn pack(&self) -> PackState {
        self.pack
    }

    /// Has the RTS for this send gone out?
    pub fn rts_sent(&self) -> bool {
        self.rts_sent
    }

    /// Locally complete (send) / data delivered (recv).
    pub fn is_done(&self) -> bool {
        self.stage == Stage::Done
    }

    /// Reached a terminal stage (`Done` or `Failed`).
    pub fn is_terminal(&self) -> bool {
        matches!(self.stage, Stage::Done | Stage::Failed)
    }

    /// Posted receive not yet matched to an RTS/eager message (also true
    /// for a send that has not issued).
    pub fn is_unmatched(&self) -> bool {
        self.stage == Stage::Pending
    }

    /// Matched receive still waiting for its payload.
    pub fn awaiting_data(&self) -> bool {
        self.stage == Stage::AwaitingData
    }

    /// Receive that has not yet seen its payload (posted or matched) — the
    /// fusion scheduler's receiver-side linger predicate.
    pub fn pre_data(&self) -> bool {
        matches!(self.stage, Stage::Pending | Stage::AwaitingData)
    }

    /// Check `event` against the legal-transition relation and apply it.
    ///
    /// On rejection the lifecycle is left untouched and the offending
    /// combination is returned.
    pub fn try_apply(&mut self, event: LifecycleEvent) -> Result<(), IllegalTransition> {
        let legal = match event {
            // Packing may (re-)start any time before it finishes; the
            // backpressure requeue re-arms an already-in-flight pack.
            LifecycleEvent::PackStarted => {
                matches!(self.pack, PackState::NotStarted | PackState::InFlight)
            }
            LifecycleEvent::PackFinished => {
                matches!(self.pack, PackState::NotStarted | PackState::InFlight)
            }
            // One RTS per send; it may overlap any pack/issue state
            // (DirectIPC announces before packing, RGET after).
            LifecycleEvent::RtsSent => self.role == Role::Send && !self.rts_sent,
            LifecycleEvent::Matched => self.role == Role::Recv && self.stage == Stage::Pending,
            LifecycleEvent::DataArrived => {
                self.role == Role::Recv
                    && matches!(self.stage, Stage::Pending | Stage::AwaitingData)
            }
            // A payload can only go on the wire once its pack is done.
            LifecycleEvent::Issued => {
                self.role == Role::Send
                    && self.stage == Stage::Pending
                    && self.pack == PackState::Done
            }
            LifecycleEvent::IssueRetracted => {
                self.role == Role::Send && self.stage == Stage::Active
            }
            // A send may complete from Pending (DirectIPC Fin arrives while
            // the payload never rides the wire); a receive only from Active.
            LifecycleEvent::Completed => match self.role {
                Role::Send => matches!(self.stage, Stage::Pending | Stage::Active),
                Role::Recv => self.stage == Stage::Active,
            },
            LifecycleEvent::Failed => !self.is_terminal(),
        };
        if !legal {
            return Err(IllegalTransition {
                role: self.role,
                stage: self.stage,
                pack: self.pack,
                event,
            });
        }
        self.force(event);
        Ok(())
    }

    /// Apply `event`, asserting legality in debug builds. Release builds
    /// fall back to the raw flag semantics ([`RequestLifecycle::force`])
    /// so a fault-replayed event stream degrades exactly as the pre-machine
    /// flag writes did instead of panicking mid-exchange.
    pub fn apply(&mut self, event: LifecycleEvent) {
        if let Err(err) = self.try_apply(event) {
            debug_assert!(false, "{err}");
            self.force(event);
        }
    }

    /// Unconditionally apply `event`'s effect — the exact semantics of the
    /// boolean flags this machine replaced.
    fn force(&mut self, event: LifecycleEvent) {
        match event {
            LifecycleEvent::PackStarted => self.pack = PackState::InFlight,
            LifecycleEvent::PackFinished => self.pack = PackState::Done,
            LifecycleEvent::RtsSent => self.rts_sent = true,
            LifecycleEvent::Matched => self.stage = Stage::AwaitingData,
            LifecycleEvent::DataArrived => self.stage = Stage::Active,
            LifecycleEvent::Issued => self.stage = Stage::Active,
            LifecycleEvent::IssueRetracted => self.stage = Stage::Pending,
            LifecycleEvent::Completed => self.stage = Stage::Done,
            LifecycleEvent::Failed => self.stage = Stage::Failed,
        }
    }
}

/// FIFO parking lot for operations refused by a full request ring — the
/// backpressure ladder's queue, generic so the property tests can model it
/// with plain integers.
///
/// The drain discipline: [`RequeueLadder::take_next`] pops the oldest
/// parked operation; if the ring refuses it again the caller
/// [`RequeueLadder::park_front`]s it back and stops, so relative order is
/// preserved across any number of refusals.
#[derive(Debug, Clone, Default)]
pub struct RequeueLadder<T> {
    queue: VecDeque<T>,
}

impl<T> RequeueLadder<T> {
    pub fn new() -> Self {
        RequeueLadder {
            queue: VecDeque::new(),
        }
    }

    /// Park an operation at the back (a fresh refusal).
    pub fn park(&mut self, op: T) {
        self.queue.push_back(op);
    }

    /// Put an operation back at the front (refused again mid-drain; it
    /// stays the oldest).
    pub fn park_front(&mut self, op: T) {
        self.queue.push_front(op);
    }

    /// Take the oldest parked operation.
    pub fn take_next(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_walks_eager_path() {
        let mut lc = RequestLifecycle::send();
        assert!(lc.is_unmatched());
        lc.apply(LifecycleEvent::PackFinished);
        lc.apply(LifecycleEvent::Issued);
        assert_eq!(lc.stage(), Stage::Active);
        lc.apply(LifecycleEvent::Completed);
        assert!(lc.is_done());
    }

    #[test]
    fn issue_requires_finished_pack() {
        let mut lc = RequestLifecycle::send();
        let err = lc.try_apply(LifecycleEvent::Issued).unwrap_err();
        assert_eq!(err.event, LifecycleEvent::Issued);
        assert_eq!(lc.stage(), Stage::Pending, "rejection leaves state");
    }

    #[test]
    fn recv_walks_rendezvous_path() {
        let mut lc = RequestLifecycle::recv();
        lc.apply(LifecycleEvent::Matched);
        assert!(lc.awaiting_data());
        assert!(lc.pre_data());
        lc.apply(LifecycleEvent::DataArrived);
        lc.apply(LifecycleEvent::PackStarted);
        lc.apply(LifecycleEvent::PackFinished);
        lc.apply(LifecycleEvent::Completed);
        assert!(lc.is_done() && lc.is_terminal());
    }

    #[test]
    fn recv_rejects_send_events() {
        let mut lc = RequestLifecycle::recv();
        assert!(lc.try_apply(LifecycleEvent::RtsSent).is_err());
        assert!(lc.try_apply(LifecycleEvent::Issued).is_err());
        assert!(!lc.rts_sent());
    }

    #[test]
    fn rts_goes_out_once() {
        let mut lc = RequestLifecycle::send();
        lc.apply(LifecycleEvent::RtsSent);
        assert!(lc.rts_sent());
        assert!(lc.try_apply(LifecycleEvent::RtsSent).is_err());
    }

    #[test]
    fn retract_rolls_an_issue_back() {
        let mut lc = RequestLifecycle::send();
        lc.apply(LifecycleEvent::PackFinished);
        lc.apply(LifecycleEvent::Issued);
        lc.apply(LifecycleEvent::IssueRetracted);
        assert_eq!(lc.stage(), Stage::Pending);
        lc.apply(LifecycleEvent::Issued);
        assert_eq!(lc.stage(), Stage::Active);
    }

    #[test]
    fn terminal_stages_absorb() {
        let mut lc = RequestLifecycle::send();
        lc.apply(LifecycleEvent::Failed);
        assert!(lc.is_terminal());
        assert!(lc.try_apply(LifecycleEvent::Completed).is_err());
        assert!(lc.try_apply(LifecycleEvent::Failed).is_err());
    }

    #[test]
    fn requeue_ladder_is_fifo() {
        let mut q = RequeueLadder::new();
        q.park(1);
        q.park(2);
        assert_eq!(q.len(), 2);
        let head = q.take_next().unwrap();
        q.park_front(head); // refused: stays oldest
        q.park(3);
        assert_eq!(q.take_next(), Some(1));
        assert_eq!(q.take_next(), Some(2));
        assert_eq!(q.take_next(), Some(3));
        assert!(q.is_empty());
    }
}
