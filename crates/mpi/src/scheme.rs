//! Datatype-processing scheme selection and per-scheme policies.

use fusedpack_core::FusionConfig;
use fusedpack_gpu::HostLink;

/// Which production library a naive per-block-copy scheme emulates. Both
/// stage through host memory with one `cudaMemcpyAsync` per contiguous
/// block; they differ slightly in per-copy constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NaiveFlavor {
    /// IBM Spectrum MPI v10.3 (POWER systems).
    SpectrumMpi,
    /// OpenMPI v4.0.3 + UCX v1.8.
    OpenMpi,
}

impl NaiveFlavor {
    /// Multiplier on the per-copy CPU cost relative to the architecture's
    /// base `memcpy_async_call`.
    pub fn call_cost_factor(self) -> f64 {
        match self {
            NaiveFlavor::SpectrumMpi => 1.15,
            NaiveFlavor::OpenMpi => 1.0,
        }
    }
}

/// The derived-datatype processing scheme a rank's runtime uses.
#[derive(Debug, Clone)]
pub enum SchemeKind {
    /// GPU-Sync \[8, 22\]: specialized pack/unpack kernel + blocking
    /// `cudaStreamSynchronize` per message. No layout cache.
    GpuSync,
    /// GPU-Async \[23\]: pack/unpack kernels on a small pool of streams with
    /// `cudaEventRecord`/`cudaEventQuery` completion detection. No layout
    /// cache.
    GpuAsync,
    /// CPU-GPU-Hybrid \[24\]: GDRCopy CPU load/store path for dense/small
    /// layouts, cached-layout GPU kernels otherwise.
    CpuGpuHybrid,
    /// The paper's proposed dynamic kernel fusion.
    Fusion(FusionConfig),
    /// Dynamic kernel fusion with the online adaptive threshold controller
    /// and cost-guided fused-kernel block partitioning enabled
    /// (*Proposed-Adaptive*). The config's `threshold_bytes` is only the
    /// starting point — the scheduler retunes it between flushes.
    FusionAdaptive(FusionConfig),
    /// Production-library naive path: one staged copy per contiguous block.
    NaiveCopy(NaiveFlavor),
    /// MVAPICH2-GDR's adaptive selection between the hybrid CPU path and
    /// GPU-Sync, with more conservative hybrid limits.
    Adaptive,
}

impl SchemeKind {
    /// The proposed design at the paper's default 512 KB threshold.
    pub fn fusion_default() -> Self {
        SchemeKind::Fusion(FusionConfig::default())
    }

    /// The proposed design with a workload-tuned threshold
    /// (*Proposed-Tuned* in the evaluation).
    pub fn fusion_with_threshold(threshold_bytes: u64) -> Self {
        SchemeKind::Fusion(FusionConfig::with_threshold(threshold_bytes))
    }

    /// The proposed design with online threshold adaptation and cost-guided
    /// block partitioning (*Proposed-Adaptive*). Starts from the paper's
    /// default threshold and adapts from there.
    pub fn fusion_adaptive() -> Self {
        SchemeKind::FusionAdaptive(FusionConfig {
            partition: fusedpack_gpu::PartitionPolicy::CostGuided,
            ..FusionConfig::default()
        })
    }
}

// `SchemeKind::label`, `has_layout_cache`, and `fusion_config` live in
// `crate::registry` beside the descriptor table — the one module allowed
// to match on the variants.

/// When the hybrid/adaptive schemes choose the GDRCopy CPU path over a GPU
/// kernel.
#[derive(Debug, Clone, Copy)]
pub struct HybridPolicy {
    /// Use the CPU path only when the packed message is at most this large.
    pub gdr_max_bytes: u64,
    /// ...and spans at most this many contiguous blocks.
    pub gdr_max_blocks: u64,
}

impl HybridPolicy {
    /// Derive the policy from the node's CPU↔GPU link, as \[24\] does: with
    /// coherent NVLink load/stores the CPU path pays off up to sizeable
    /// dense messages; over PCIe only tiny messages qualify (BAR reads).
    pub fn for_link(link: &HostLink, adaptive: bool) -> Self {
        if link.cpu_loadstore_fast {
            HybridPolicy {
                gdr_max_bytes: if adaptive { 64 * 1024 } else { 128 * 1024 },
                gdr_max_blocks: 512,
            }
        } else {
            HybridPolicy {
                gdr_max_bytes: if adaptive { 2 * 1024 } else { 4 * 1024 },
                gdr_max_blocks: 64,
            }
        }
    }

    /// Should this message take the CPU (GDRCopy) path?
    pub fn use_cpu_path(&self, packed_bytes: u64, blocks: u64) -> bool {
        packed_bytes <= self.gdr_max_bytes && blocks <= self.gdr_max_blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(SchemeKind::GpuSync.label(), "GPU-Sync");
        assert_eq!(SchemeKind::fusion_default().label(), "Proposed");
        assert_eq!(
            SchemeKind::NaiveCopy(NaiveFlavor::SpectrumMpi).label(),
            "SpectrumMPI"
        );
        assert_eq!(SchemeKind::Adaptive.label(), "MVAPICH2-GDR");
    }

    #[test]
    fn layout_cache_follows_table_i() {
        assert!(!SchemeKind::GpuSync.has_layout_cache());
        assert!(!SchemeKind::GpuAsync.has_layout_cache());
        assert!(SchemeKind::CpuGpuHybrid.has_layout_cache());
        assert!(SchemeKind::fusion_default().has_layout_cache());
    }

    #[test]
    fn hybrid_policy_wider_on_nvlink() {
        let nv = HybridPolicy::for_link(&HostLink::nvlink2_cpu(), false);
        let pcie = HybridPolicy::for_link(&HostLink::pcie_gen3(), false);
        assert!(nv.gdr_max_bytes > pcie.gdr_max_bytes);
        // A 16 KB dense message: CPU path on NVLink, kernel path on PCIe.
        assert!(nv.use_cpu_path(16 * 1024, 16));
        assert!(!pcie.use_cpu_path(16 * 1024, 16));
        // Sparse thousands-of-blocks layouts never take the CPU path.
        assert!(!nv.use_cpu_path(16 * 1024, 4096));
    }

    #[test]
    fn adaptive_is_more_conservative() {
        let hybrid = HybridPolicy::for_link(&HostLink::nvlink2_cpu(), false);
        let adaptive = HybridPolicy::for_link(&HostLink::nvlink2_cpu(), true);
        assert!(adaptive.gdr_max_bytes < hybrid.gdr_max_bytes);
    }

    #[test]
    fn adaptive_fusion_scheme_shape() {
        let s = SchemeKind::fusion_adaptive();
        assert_eq!(s.label(), "Proposed-Adaptive");
        assert!(s.has_layout_cache(), "Table I: fusion caches layouts");
        let cfg = s.fusion_config().expect("adaptive fusion variant");
        assert_eq!(
            cfg.partition,
            fusedpack_gpu::PartitionPolicy::CostGuided,
            "adaptive scheme pairs with cost-guided partitioning"
        );
        assert_eq!(
            cfg.threshold_bytes,
            FusionConfig::default().threshold_bytes,
            "starts from the paper's default and adapts online"
        );
    }

    #[test]
    fn fusion_with_threshold_sets_config() {
        let s = SchemeKind::fusion_with_threshold(64 * 1024);
        let cfg = s.fusion_config().expect("fusion variant");
        assert_eq!(cfg.threshold_bytes, 64 * 1024);
    }
}
