//! A contiguous slice of a global index space.
//!
//! Sharded runs ([`super::shardrun`]) hand each worker the sub-range of
//! ranks (and nodes) it owns, but every protocol path indexes state by
//! *global* rank — `self.ranks[msg.dst.0 as usize]` and friends appear in
//! hundreds of places. [`Ranged`] keeps those sites compiling unchanged:
//! it is a `Vec<T>` plus a base offset whose `Index` impl translates a
//! global index to a local one. A single-queue cluster is simply the
//! degenerate case with `base == 0`.
//!
//! Indexing outside the owned range is a bug (an event escaped its shard)
//! and panics with the offending indices in the message.

use std::ops::{Index, IndexMut, Range};

#[derive(Debug)]
pub(crate) struct Ranged<T> {
    base: usize,
    items: Vec<T>,
}

impl<T> Default for Ranged<T> {
    fn default() -> Self {
        Ranged {
            base: 0,
            items: Vec::new(),
        }
    }
}

impl<T> Ranged<T> {
    /// Wrap a full global array (base 0).
    pub fn from_vec(items: Vec<T>) -> Self {
        Ranged { base: 0, items }
    }

    /// Wrap the sub-range starting at global index `base`.
    pub fn with_base(base: usize, items: Vec<T>) -> Self {
        Ranged { base, items }
    }

    /// Number of owned items (the local count, not the global extent).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Does this range own global index `i`?
    #[inline]
    pub fn contains_index(&self, i: usize) -> bool {
        i >= self.base && i < self.base + self.items.len()
    }

    /// The owned global indices.
    pub fn indices(&self) -> Range<usize> {
        self.base..self.base + self.items.len()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }

    /// Unwrap the backing storage (recompose path).
    pub fn into_vec(self) -> Vec<T> {
        self.items
    }
}

impl<T> Index<usize> for Ranged<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        debug_assert!(
            self.contains_index(i),
            "global index {i} outside owned range {:?}",
            self.indices()
        );
        &self.items[i - self.base]
    }
}

impl<T> IndexMut<usize> for Ranged<T> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut T {
        debug_assert!(
            self.contains_index(i),
            "global index {i} outside owned range {:?}",
            self.indices()
        );
        &mut self.items[i - self.base]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translates_global_indices() {
        let r = Ranged::with_base(10, vec!["a", "b", "c"]);
        assert_eq!(r[10], "a");
        assert_eq!(r[12], "c");
        assert!(r.contains_index(10) && r.contains_index(12));
        assert!(!r.contains_index(9) && !r.contains_index(13));
        assert_eq!(r.indices(), 10..13);
    }

    #[test]
    fn base_zero_behaves_like_a_vec() {
        let mut r = Ranged::from_vec(vec![1, 2, 3]);
        r[1] += 10;
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![1, 12, 3]);
        assert_eq!(r.into_vec(), vec![1, 12, 3]);
    }
}
