//! Time-window sharded execution: a conservative parallel event loop.
//!
//! ## Shape
//!
//! `run_sharded` partitions the cluster into N worker shards at node
//! boundaries — each shard *is* a [`Cluster`] owning a contiguous range of
//! ranks, their GPUs, staging pools, and the NICs of its nodes (the
//! [`Ranged`](super::Ranged) wrappers keep global indexing working). The
//! coordinator repeatedly:
//!
//! 1. computes the next window `[W, W + δ)` where `W` is the minimum
//!    next-event time over all shard queues and δ is the *lookahead* —
//!    the smallest latency any cross-shard effect must pay (the fastest
//!    hop of the topology, or the internode wire latency in flat mode);
//! 2. hands each shard to a persistent worker thread, which drains its
//!    own timing wheel up to (excluding) `W + δ`;
//! 3. at the barrier, applies the round's deferred routed transmits
//!    against the master [`TopoNet`] and admits cross-shard deliveries
//!    from the per-pair [`Mailbox`]es into destination queues.
//!
//! ## Why the result is byte-identical to the single queue
//!
//! Every event processed in a round has `t ≥ W`, so any effect it sends
//! across shards lands at `t + δ ≥ W + δ` — at or past the window end,
//! never inside a queue a worker is concurrently draining. Within a
//! round, shards only touch disjoint state: rank/GPU/pool state is
//! shard-local by construction, flat intra-node links and NICs are
//! node-aligned, and *all* routed transmits are deferred (intra-node
//! routes share node-local hops with inter-node ones, so topology state
//! stays with the coordinator). Deferred transmits are applied in
//! ascending (event time, event key, intra-dispatch seq) — exactly the
//! order the single-queue loop executes them, because it dispatches
//! events in (time, key) order and issues transmits in program order
//! within a dispatch. Canonical keys (see [`super::Cluster::next_key`])
//! make that order global and mode-independent, and give the timing
//! wheels the same tiebreaker everywhere. Wall-clock-only quantities
//! (stall/barrier time, per-shard queue high-waters) are reported in
//! [`ShardStats`] and excluded from the identity claim.
//!
//! ## Fault plans shard cleanly
//!
//! Armed fault plans no longer clamp the shard count: rank-scoped fault
//! streams are consumed in each rank's own event order (identical at any
//! shard count), wire/NIC/hop decisions and backoff jitter are stateless
//! hashes keyed by canonical event keys, and deferred transmits replay the
//! full retry ladder at the barrier in single-queue order against the
//! master network — so chaos reports are byte-identical at any `--shards
//! N`. Fabric hop-state transitions happen only during barrier replay,
//! which means every shard observes a route-epoch change at the same
//! window boundary (the barrier telemetry instant records the epoch).
//!
//! ## What disqualifies a run
//!
//! `effective_shards` clamps to 1 when ranks are not grouped contiguously
//! by node, when there are fewer than two nodes, or when the lookahead is
//! zero.

use super::{Cluster, Event, Ranged, RankId};
use crate::message::WireMsg;
use crate::sendrecv::SendId;
use fusedpack_gpu::BufferPool;
use fusedpack_net::TopoNet;
use fusedpack_sim::{
    ClampStats, Duration, EventQueue, FaultSummary, Mailbox, ShardStats, Slab, Time, WheelStats,
};
use fusedpack_telemetry::{Lane, Payload};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// A routed transmit recorded during a sharded round, applied at the
/// barrier against the master [`TopoNet`] in the exact order the
/// single-queue loop would have executed it.
#[derive(Debug)]
pub(crate) struct PendingTransmit {
    /// Virtual time of the event whose dispatch issued the transmit.
    pub t_e: Time,
    /// Canonical key of that event (globally unique).
    pub k_e: u64,
    /// Shard-local monotone sequence: orders transmits within one
    /// dispatch (between dispatches, `(t_e, k_e)` already decides).
    pub seq: u64,
    /// Sending rank (global).
    pub src: usize,
    /// Wire time the sender issued at.
    pub at: Time,
    pub bytes: u64,
    pub gdr: bool,
    /// The message to deliver (payload captured at defer time).
    pub msg: WireMsg,
    /// Pre-drawn key for the Deliver event.
    pub deliver_key: u64,
    /// Initiator-side CQE to schedule at completion, with its key.
    pub complete: Option<(SendId, u64)>,
    /// Pre-drawn key for a duplicated CQE (the `NicDupCompletion` site
    /// fired at issue time); the coordinator schedules the replayed
    /// completion once the real completion time is known.
    pub dup: Option<u64>,
}

/// One shard's slice of the cluster: rank range and node range, both
/// half-open, both aligned (every node's ranks land in exactly one shard).
#[derive(Debug, Clone, Copy)]
struct ShardSpec {
    rank_start: usize,
    rank_end: usize,
    node_start: usize,
    node_end: usize,
}

impl Cluster {
    /// Clamp the requested shard count to what this run supports.
    pub(crate) fn effective_shards(&self) -> u32 {
        let req = self.shards_requested;
        if req <= 1 {
            return 1;
        }
        let num_nodes = self.nics.len() as u32;
        if num_nodes < 2 || self.ranks.len() < 2 {
            return 1;
        }
        // Node-aligned splitting needs each node's ranks contiguous.
        if !self.endpoints.windows(2).all(|w| w[0].node <= w[1].node) {
            return 1;
        }
        if self.lookahead() == Duration::ZERO {
            return 1;
        }
        req.min(num_nodes)
    }

    /// The conservative lookahead δ: no effect of an event at `t` can
    /// reach another shard before `t + δ`. Topology mode: the fastest
    /// hop's latency (every route crosses at least one hop). Flat mode:
    /// the internode first-byte latency (node-aligned shards make every
    /// cross-shard delivery an internode one).
    fn lookahead(&self) -> Duration {
        match &self.topo {
            Some(net) => net.min_hop_latency(),
            None => self.platform.internode.latency,
        }
    }

    /// Drain this shard's queue up to (excluding) `window_end`.
    fn run_window(&mut self, window_end: Time) {
        let mut clamps_seen = self.events.clamp_stats();
        while self.events.peek_time().is_some_and(|t| t < window_end) {
            let (t, key, ev) = self.events.pop_keyed().expect("peeked event");
            self.cur_event = (t, key);
            self.dispatch(t, ev);
            let clamps_now = self.events.clamp_stats();
            if clamps_now.count > clamps_seen.count {
                let skew = clamps_now.total_skew - clamps_seen.total_skew;
                self.telemetry
                    .instant(Lane::Host, self.events.now(), || Payload::ClampedEvent {
                        skew_ns: skew.as_nanos(),
                    });
                clamps_seen = clamps_now;
            }
        }
    }

    /// Node-aligned partition: nodes are split into `shards` contiguous
    /// groups of near-equal size, rank ranges follow from the endpoints.
    fn shard_plan(&self, shards: u32) -> Vec<ShardSpec> {
        let num_nodes = self.nics.len();
        let shards = shards as usize;
        let mut specs = Vec::with_capacity(shards);
        let mut rank_cursor = 0usize;
        for s in 0..shards {
            let node_start = s * num_nodes / shards;
            let node_end = (s + 1) * num_nodes / shards;
            let rank_start = rank_cursor;
            while rank_cursor < self.endpoints.len()
                && (self.endpoints[rank_cursor].node as usize) < node_end
            {
                rank_cursor += 1;
            }
            specs.push(ShardSpec {
                rank_start,
                rank_end: rank_cursor,
                node_start,
                node_end,
            });
        }
        debug_assert_eq!(rank_cursor, self.endpoints.len());
        specs
    }

    /// Split the master cluster into per-shard clusters. The master is
    /// left hollow (empty vectors) until `recompose` puts everything
    /// back.
    fn decompose(&mut self, specs: &[ShardSpec], defer_transmits: bool) -> Vec<Cluster> {
        let shards = specs.len();
        let mut rank_shard = vec![0u32; self.endpoints.len()];
        for (s, spec) in specs.iter().enumerate() {
            for slot in &mut rank_shard[spec.rank_start..spec.rank_end] {
                *slot = s as u32;
            }
        }
        let mut ranks = std::mem::take(&mut self.ranks).into_vec();
        let mut gpus = std::mem::take(&mut self.gpus).into_vec();
        let mut staging_mems = std::mem::take(&mut self.staging_mems).into_vec();
        let mut host_mems = std::mem::take(&mut self.host_mems).into_vec();
        let mut nics = std::mem::take(&mut self.nics).into_vec();
        let mut intra_links = std::mem::take(&mut self.intra_links);

        // Redistribute the seeded events to their owner shards. Only
        // pre-run queues can be sharded: in-flight wire traffic has no
        // owner rank to route by.
        debug_assert!(
            self.wire_slab.is_empty(),
            "cannot shard a cluster with in-flight wire messages"
        );
        let mut master_q = std::mem::take(&mut self.events);
        let mut queues: Vec<EventQueue<Event>> = (0..shards).map(|_| EventQueue::new()).collect();
        while let Some((t, key, ev)) = master_q.pop_keyed() {
            let origin = event_origin(&ev);
            queues[rank_shard[origin] as usize].push_at_key(t, key, ev);
        }

        let mut out: Vec<Cluster> = Vec::with_capacity(shards);
        for spec in specs.iter().rev() {
            let shard_ranks = ranks.split_off(spec.rank_start);
            let shard_gpus = gpus.split_off(spec.rank_start);
            let shard_staging = staging_mems.split_off(spec.rank_start);
            let shard_host = host_mems.split_off(spec.rank_start);
            let shard_nics = nics.split_off(spec.node_start);
            // Intra-node links are keyed by (node, node); each belongs to
            // the shard owning that node.
            let node_range = spec.node_start as u32..spec.node_end as u32;
            // HashMap::extract_if is 1.88+; the toolchain provides it even
            // though the manifest MSRV trails behind.
            #[allow(clippy::incompatible_msrv)]
            let shard_intra: std::collections::HashMap<_, _> = intra_links
                .extract_if(|&(a, _), _| node_range.contains(&a))
                .collect();
            out.push(Cluster {
                platform: self.platform.clone(),
                engine: Arc::clone(&self.engine),
                data_mode: self.data_mode,
                events: queues.pop().expect("one queue per shard"),
                ranks: Ranged::with_base(spec.rank_start, shard_ranks),
                gpus: Ranged::with_base(spec.rank_start, shard_gpus),
                staging_mems: Ranged::with_base(spec.rank_start, shard_staging),
                host_mems: Ranged::with_base(spec.rank_start, shard_host),
                nics: Ranged::with_base(spec.node_start, shard_nics),
                rndv: self.rndv,
                topo: None,
                endpoints: self.endpoints.clone(),
                intra_links: shard_intra,
                buf_pool: BufferPool::new(),
                wire_slab: Slab::new(),
                telemetry: self.telemetry.clone(),
                // Each shard carries a clone of the plan: rank-scoped
                // streams are drawn only by the owning shard (per-rank,
                // so the clones never diverge from the single-queue
                // sequences) and keyed decisions are stateless.
                faults: self.faults.clone(),
                fault_stats: FaultSummary::default(),
                retry: self.retry,
                shards_requested: 1,
                cur_event: (Time::ZERO, 0),
                defer_transmits,
                pending: Vec::new(),
                pending_seq: 0,
                rank_shard: rank_shard.clone(),
                outboxes: (0..shards).map(|_| Mailbox::default()).collect(),
                shard_stats: ShardStats {
                    shards: shards as u32,
                    ..ShardStats::default()
                },
                absorbed_pool: fusedpack_gpu::PoolStats::default(),
            });
        }
        out.reverse();
        out
    }

    /// Reassemble the master cluster from finished shard states, folding
    /// their counters into the master's accumulators.
    fn recompose(&mut self, states: Vec<Cluster>) {
        let mut ranks = Vec::new();
        let mut gpus = Vec::new();
        let mut staging_mems = Vec::new();
        let mut host_mems = Vec::new();
        let mut nics = Vec::new();
        for mut cl in states {
            debug_assert!(cl.wire_slab.is_empty(), "shard leaked wire messages");
            debug_assert!(cl.pending.is_empty(), "shard leaked deferred transmits");
            debug_assert!(
                cl.outboxes.iter().all(|m| m.is_empty()),
                "shard leaked outbox messages"
            );
            for mb in &cl.outboxes {
                cl.shard_stats.mailbox_spills += mb.spill_count();
            }
            let pool = cl.buf_pool.stats();
            self.absorbed_pool.hits += pool.hits;
            self.absorbed_pool.misses += pool.misses;
            self.absorbed_pool.released += pool.released;
            self.absorbed_pool.dropped += pool.dropped;
            self.fault_stats.merge(&cl.fault_stats);
            self.shard_stats.merge(&cl.shard_stats);
            ranks.extend(cl.ranks.into_vec());
            gpus.extend(cl.gpus.into_vec());
            staging_mems.extend(cl.staging_mems.into_vec());
            host_mems.extend(cl.host_mems.into_vec());
            nics.extend(cl.nics.into_vec());
            self.intra_links.extend(cl.intra_links);
        }
        self.ranks = Ranged::from_vec(ranks);
        self.gpus = Ranged::from_vec(gpus);
        self.staging_mems = Ranged::from_vec(staging_mems);
        self.host_mems = Ranged::from_vec(host_mems);
        self.nics = Ranged::from_vec(nics);
    }

    /// The sharded run loop (coordinator side).
    pub(crate) fn run_sharded(&mut self, shards: u32) -> super::RunReport {
        let specs = self.shard_plan(shards);
        let delta = self.lookahead();
        let mut master_net = self.topo.take();
        let mut slots: Vec<Option<Cluster>> = self
            .decompose(&specs, master_net.is_some())
            .into_iter()
            .map(Some)
            .collect();
        let n = slots.len();
        let mut coord = ShardStats {
            shards,
            ..ShardStats::default()
        };
        let mut scratch: Vec<(Time, u64, WireMsg)> = Vec::new();

        crossbeam::thread::scope(|scope| {
            let (res_tx, res_rx) = mpsc::channel::<(usize, Cluster)>();
            let mut cmd_txs: Vec<mpsc::SyncSender<(Cluster, Time)>> = Vec::with_capacity(n);
            for s in 0..n {
                let (tx, rx) = mpsc::sync_channel::<(Cluster, Time)>(1);
                cmd_txs.push(tx);
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    let mut idle_since: Option<Instant> = None;
                    while let Ok((mut cl, window_end)) = rx.recv() {
                        if let Some(t) = idle_since {
                            cl.shard_stats.stall_wall_ns += t.elapsed().as_nanos() as u64;
                        }
                        cl.run_window(window_end);
                        idle_since = Some(Instant::now());
                        if res_tx.send((s, cl)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);
            loop {
                // All shards are home between rounds: the earliest event
                // anywhere opens the next window.
                let w = slots
                    .iter()
                    .filter_map(|c| c.as_ref().expect("shard home").events.peek_time())
                    .min();
                let Some(w) = w else { break };
                let window_end = w + delta;
                coord.barriers += 1;
                for (s, slot) in slots.iter_mut().enumerate() {
                    let cl = slot.take().expect("shard home");
                    cmd_txs[s].send((cl, window_end)).expect("worker alive");
                }
                for _ in 0..n {
                    let (s, cl) = res_rx.recv().expect("worker alive");
                    slots[s] = Some(cl);
                }
                let t0 = Instant::now();
                let applied = if master_net.is_some() {
                    apply_pending(&mut slots, &mut master_net)
                } else {
                    0
                };
                coord.deferred_transmits += applied;
                let admitted = drain_outboxes(&mut slots, &mut scratch);
                coord.admitted_msgs += admitted;
                coord.barrier_wall_ns += t0.elapsed().as_nanos() as u64;
                let window_ns = window_end.as_nanos();
                // Every shard observes fabric hop transitions at the same
                // barrier, so the route epoch recorded here is identical
                // at any shard count.
                let route_epoch = master_net.as_ref().map_or(0, |n| n.route_epoch());
                self.telemetry
                    .instant(Lane::Host, window_end, || Payload::ShardBarrier {
                        window_ns,
                        admitted,
                        applied,
                        route_epoch,
                    });
            }
            drop(cmd_txs); // workers exit their recv loops
        })
        .expect("shard worker panicked");

        let mut states: Vec<Cluster> = slots.into_iter().map(|c| c.expect("shard home")).collect();
        // Queue aggregates across shards, gathered before recompose.
        let mut end_time = Time::ZERO;
        let mut events_processed = 0u64;
        let mut event_clamps = ClampStats::default();
        let mut wheel = WheelStats::default();
        let mut wire_high_water = 0u32;
        for cl in &mut states {
            end_time = end_time.max(cl.events.now());
            events_processed += cl.events.processed();
            let c = cl.events.clamp_stats();
            event_clamps.count += c.count;
            event_clamps.total_skew += c.total_skew;
            event_clamps.max_skew = event_clamps.max_skew.max(c.max_skew);
            let ws = cl.events.wheel_stats();
            wheel.overflow_hits += ws.overflow_hits;
            wheel.cascades += ws.cascades;
            wheel.slots_drained += ws.slots_drained;
            wheel.slab_high_water = wheel.slab_high_water.max(ws.slab_high_water);
            // Peak in-flight wire messages: shard slabs are disjoint, so
            // the cluster-wide peak is bounded by the sum of peaks.
            wire_high_water += cl.wire_slab.high_water();
        }
        self.topo = master_net;
        self.shard_stats.merge(&coord);
        self.recompose(states);
        self.finish_report(
            end_time,
            events_processed,
            event_clamps,
            wheel,
            wire_high_water,
        )
    }
}

/// The rank whose shard owns this event. `Deliver` never appears in a
/// pre-run queue (asserted in `decompose`) and is routed explicitly at
/// barriers, so it has no origin here.
fn event_origin(ev: &Event) -> usize {
    match ev {
        Event::Wake(r)
        | Event::PackDone(r, _)
        | Event::UnpackDone(r, _)
        | Event::FusionDone(r, _)
        | Event::SendComplete(r, _) => r.0 as usize,
        Event::Deliver(_) => unreachable!("in-flight deliveries cannot be redistributed"),
    }
}

/// Apply every transmit deferred during the round against the master
/// network, in ascending (event time, event key, intra-dispatch seq) —
/// the exact order the single-queue loop issues them — then schedule the
/// resulting Deliver/SendComplete events into the owning shards.
///
/// The master network is temporarily installed into the sending shard's
/// `topo` slot so the replay runs the exact single-queue code path:
/// the full retry ladder, keyed fault draws, fabric health transitions,
/// and the forced-delivery rung all execute here, against shared fabric
/// state, in canonical order.
fn apply_pending(slots: &mut [Option<Cluster>], net_slot: &mut Option<TopoNet>) -> u64 {
    let mut batch: Vec<PendingTransmit> = Vec::new();
    for slot in slots.iter_mut() {
        let cl = slot.as_mut().expect("shard home");
        // `append` leaves the shard's buffer empty but keeps its
        // capacity, so steady-state rounds never reallocate.
        batch.append(&mut cl.pending);
    }
    batch.sort_by_key(|p| (p.t_e, p.k_e, p.seq));
    let applied = batch.len() as u64;
    for p in batch {
        let dst = p.msg.dst.0 as usize;
        let (src_shard, dst_shard) = {
            let map = &slots[0].as_ref().expect("shard home").rank_shard;
            (map[p.src] as usize, map[dst] as usize)
        };
        let (delivered, completion) = {
            let cl = slots[src_shard].as_mut().expect("shard home");
            debug_assert!(cl.topo.is_none(), "shards never own a network");
            cl.topo = net_slot.take();
            let out = cl.transport_reliable(p.src, dst, p.at, p.bytes, p.gdr, p.deliver_key);
            *net_slot = cl.topo.take();
            out
        };
        {
            let cl = slots[dst_shard].as_mut().expect("shard home");
            let at = delivered.max(cl.events.now());
            let slab_key = cl.wire_slab.insert(p.msg);
            cl.events
                .push_at_key(at, p.deliver_key, Event::Deliver(slab_key));
        }
        if let Some((sid, key)) = p.complete {
            let cl = slots[src_shard].as_mut().expect("shard home");
            let rid = RankId(p.src as u32);
            cl.events.push_at_key(
                completion.max(cl.events.now()),
                key,
                Event::SendComplete(rid, sid),
            );
            // A dup-CQE decision drawn at issue time replays the
            // completion one progress poll later, exactly as the
            // single-queue loop schedules it.
            if let Some(dup_key) = p.dup {
                let dup_at = completion + cl.platform.progress_poll;
                cl.events.push_at_key(
                    dup_at.max(cl.events.now()),
                    dup_key,
                    Event::SendComplete(rid, sid),
                );
            }
        }
    }
    applied
}

/// Admit every cross-shard delivery parked in an outbox into its
/// destination shard's queue. `scratch` is reused across rounds so the
/// hand-off itself never allocates in steady state.
fn drain_outboxes(slots: &mut [Option<Cluster>], scratch: &mut Vec<(Time, u64, WireMsg)>) -> u64 {
    let n = slots.len();
    let mut admitted = 0u64;
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            scratch.clear();
            scratch.extend(slots[src].as_mut().expect("shard home").outboxes[dst].drain());
            admitted += scratch.len() as u64;
            let cl = slots[dst].as_mut().expect("shard home");
            for (at, key, msg) in scratch.drain(..) {
                let at = at.max(cl.events.now());
                let slab_key = cl.wire_slab.insert(msg);
                cl.events.push_at_key(at, key, Event::Deliver(slab_key));
            }
        }
    }
    admitted
}
