//! Topology-aware transport: sends resolved to routes through a
//! [`TopoNet`] instead of the flat scalar links.
//!
//! These are the routed twins of `protocol.rs`'s `transport` /
//! `transport_reliable` wire paths. Semantics mirror the flat model
//! exactly — intra-node transfers bypass the NIC (completion coincides
//! with delivery), inter-node transfers charge NIC injection and complete
//! one tail latency after delivery — so a single-hop [`FlatLink`] route
//! reproduces the legacy timing bit-for-bit. Runtime route failures
//! (impossible for endpoints validated at build time, but reachable under
//! fault-replayed state) are absorbed in the PR-4 style: debug-assert,
//! count as spurious, fall back to the flat path.
//!
//! [`FlatLink`]: fusedpack_net::FlatLink

use super::Cluster;
use fusedpack_net::topology::RouteKey;
use fusedpack_net::{FabricHealth, HopStats, NetError, TopoNet};
use fusedpack_sim::{Duration, FaultSite, Time};
use fusedpack_telemetry::{Lane, Payload};

impl Cluster {
    fn route_key(&self, src: usize, dst: usize) -> RouteKey {
        (self.endpoints[src], self.endpoints[dst])
    }

    /// Routed analogue of `transport`: returns `(delivered,
    /// initiator_completion)`, or `None` if no network is attached, route
    /// resolution failed, or the fabric is disconnected (the caller falls
    /// back to the flat path — the forced-delivery rung under a dead
    /// fabric).
    pub(crate) fn transport_routed(
        &mut self,
        src: usize,
        dst: usize,
        at: Time,
        bytes: u64,
        gdr: bool,
        event_key: u64,
    ) -> Option<(Time, Time)> {
        // Take/restore so the routed body can borrow the network mutably
        // alongside `self` — the same body the sharded coordinator drives
        // with the master network installed in this slot at barriers.
        let mut net = self.topo.take()?;
        let out = self.transport_routed_with(&mut net, src, dst, at, bytes, gdr, event_key);
        self.topo = Some(net);
        out
    }

    /// The routed transmit body, generic over where the network lives
    /// (owned `self.topo` in single-queue runs, the coordinator's master
    /// copy in sharded runs).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn transport_routed_with(
        &mut self,
        net: &mut TopoNet,
        src: usize,
        dst: usize,
        at: Time,
        bytes: u64,
        gdr: bool,
        event_key: u64,
    ) -> Option<(Time, Time)> {
        let key = self.route_key(src, dst);
        let intra = self.endpoints[src].node == self.endpoints[dst].node;
        let outcome = if intra {
            // Intra-node transfers bypass the NIC: no injection overhead,
            // no GPUDirect cap, completion == delivery.
            net.transmit_keyed(at, key, bytes, None, event_key)
                .map(|t| (t.start, t.delivered, t.delivered))
        } else {
            let node = self.endpoints[src].node as usize;
            self.nics[node]
                .post_send_routed_keyed(net, key, at, bytes, gdr, event_key)
                .map(|t| (t.start, t.delivered, t.delivered + t.tail_latency))
        };
        let out = match outcome {
            Ok((start, delivered, completion)) => {
                if intra {
                    // The NIC emits the wire span for inter-node sends;
                    // intra-node sends emit it here, as the flat path does.
                    self.ranks[src].tele.span(Lane::Nic, start, delivered, || {
                        Payload::WireTransfer { bytes }
                    });
                }
                self.emit_hop_spans(net, src, bytes);
                Some((delivered, completion))
            }
            Err(NetError::Disconnected { .. }) => {
                // Last rung of the degradation ladder: the failures severed
                // every surviving route for this pair. The transfer is
                // forced through the flat wire model by the caller so the
                // exchange still completes — absorbed, counted, visible.
                self.fault_degraded(src, FaultSite::HopDown, "forced-delivery", at);
                None
            }
            Err(e) => {
                debug_assert!(false, "route resolution failed post-validation: {e}");
                self.fault_stats.spurious += 1;
                None
            }
        };
        self.emit_fabric_events(net, src);
        out
    }

    /// Routed analogue of the wasted (dropped-payload) transmit used by
    /// the retry protocol: occupies every hop of the route, returns
    /// `(wire_clear, route_rtt)`.
    pub(crate) fn transport_routed_wasted(
        &mut self,
        src: usize,
        dst: usize,
        now: Time,
        bytes: u64,
        gdr: bool,
    ) -> Option<(Time, Duration)> {
        let mut net = self.topo.take()?;
        let key = self.route_key(src, dst);
        let intra = self.endpoints[src].node == self.endpoints[dst].node;
        let outcome = if intra {
            net.transmit_wasted(now, key, bytes, None)
        } else {
            let node = self.endpoints[src].node as usize;
            self.nics[node].post_send_routed_wasted(&mut net, key, now, bytes, gdr)
        };
        let out = match outcome {
            Ok((start, wire_clear)) => {
                // The route is cached by the transmit above, so this
                // cannot fail; fall back defensively anyway.
                let rtt = net.route_rtt(key).ok();
                if intra {
                    self.ranks[src].tele.span(Lane::Nic, start, wire_clear, || {
                        Payload::WireTransfer { bytes }
                    });
                }
                self.emit_hop_spans(&net, src, bytes);
                rtt.map(|rtt| (wire_clear, rtt))
            }
            // Disconnected fabric: the retry ladder's real transmit takes
            // (and accounts) the forced-delivery rung; the wasted occupancy
            // falls back to the flat wire silently.
            Err(NetError::Disconnected { .. }) => None,
            Err(e) => {
                debug_assert!(false, "wasted route resolution failed: {e}");
                self.fault_stats.spurious += 1;
                None
            }
        };
        self.emit_fabric_events(&mut net, src);
        self.topo = Some(net);
        out
    }

    /// Emit one [`Payload::HopTransfer`] span per hop of the most recent
    /// routed transmit, on the sender's NIC lane. The reconciliation
    /// proptest sums these against [`TopoNet::hop_stats`].
    fn emit_hop_spans(&mut self, net: &TopoNet, src: usize, bytes: u64) {
        let tele = &self.ranks[src].tele;
        for &(hop, start, wire_done) in net.last_hops() {
            tele.span(Lane::Nic, start, wire_done, || Payload::HopTransfer {
                hop,
                bytes,
            });
        }
    }

    /// Per-hop congestion counters of the topology network, if one is
    /// attached (reports, reconciliation tests).
    pub fn topo_hop_stats(&self) -> Option<Vec<HopStats>> {
        self.topo.as_ref().map(TopoNet::hop_stats)
    }

    /// Fabric-health counters of the attached topology network (`None`
    /// without one; all-zero with one but no armed fault domain).
    pub fn fabric_health(&self) -> Option<FabricHealth> {
        self.topo.as_ref().map(TopoNet::fabric_health)
    }

    /// The attached topology's display name, if any.
    pub fn topology_name(&self) -> Option<&'static str> {
        self.topo.as_ref().map(|net| net.topology().name())
    }

    /// The (node, gpu-slot) endpoint of a rank (tests and diagnostics).
    pub fn endpoint_of(&self, rank: super::RankId) -> Option<fusedpack_net::Endpoint> {
        self.endpoints.get(rank.0 as usize).copied()
    }
}
