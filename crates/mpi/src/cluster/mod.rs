//! The simulated cluster: ranks, GPUs, NICs, and the deterministic event
//! loop that drives them.
//!
//! Construction goes through [`ClusterBuilder`]: pick a platform
//! (Table II), a datatype-processing scheme, add one program per rank, and
//! `build()`. [`Cluster::run`] executes every program to completion and
//! returns a [`RunReport`] with per-rank lap times, Fig.-11 breakdowns, and
//! scheduler statistics.

mod accounting;
mod exec;
mod protocol;
mod ranged;
mod rank;
pub(crate) mod schemes;
mod shardrun;
mod topo;

use crate::message::WireMsg;
use crate::program::{BufInit, Program};
use crate::scheme::SchemeKind;
use crate::sendrecv::{RecvId, SendId};
use fusedpack_core::{SchedStats, Uid};
use fusedpack_gpu::{BufferPool, DataMode, FixedRuns, Gpu, MemPool};
use fusedpack_net::platform::Platform;
use fusedpack_net::topology::{validate_endpoint, Endpoint, FabricEvent};
use fusedpack_net::{FabricHealth, Link, Nic, TopoNet, TopologyHandle};
use fusedpack_sim::trace::Trace;
use fusedpack_sim::{
    ClampStats, Duration, EventQueue, FaultPlan, FaultSite, FaultSummary, Mailbox, Pcg32,
    RetryPolicy, ShardStats, Slab, Time, WheelStats,
};
use fusedpack_telemetry::{Lane, Payload, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

pub(crate) use ranged::Ranged;
pub(crate) use rank::RankState;
pub(crate) use schemes::SchemeEngine;
pub(crate) use shardrun::PendingTransmit;

/// Bit position of the originating rank in a canonical event key: the low
/// 42 bits count events the rank originated, the high bits name the rank.
/// Keys are globally unique and identical across shard counts, so the
/// timing wheel's (time, key) pop order — and therefore the entire run —
/// is byte-identical whether one queue or many drain it.
pub(crate) const KEY_RANK_SHIFT: u32 = 42;

/// The copy tier the cluster's data planes dispatch on, resolved from the
/// layout's compile-time [`fusedpack_datatype::CopyPlan`] by
/// [`copy_tier_for`]. `Contiguous` is one flat memcpy; `Runs` carries the
/// fixed-stride plan anchored at the absolute base address (the GPU
/// dispatch internally picks const-generic widths for small runs and the
/// chunked block-uniform loop for large ones); `Generic` walks segments.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CopyTier {
    Contiguous { bytes: u64 },
    Runs(FixedRuns),
    Generic,
}

/// Resolve the copy tier for `(layout, base, count)` from the plan the
/// layout compiler classified at commit time — no per-call-site
/// re-detection.
pub(crate) fn copy_tier_for(
    layout: &fusedpack_datatype::Layout,
    base: u64,
    count: u64,
) -> CopyTier {
    use fusedpack_datatype::CopyPlan;
    match layout.plan_for(count) {
        CopyPlan::Memcpy { bytes } => CopyTier::Contiguous { bytes },
        CopyPlan::BlockUniform(p) | CopyPlan::FixedRuns(p) => CopyTier::Runs(FixedRuns {
            first: base + p.first,
            stride: p.stride,
            len: p.len,
            runs: p.runs,
        }),
        CopyPlan::Generic => CopyTier::Generic,
    }
}

/// Rendezvous sub-protocol for large messages (§IV-B1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RndvProtocol {
    /// Sender RDMA-WRITEs after receiving a CTS; the RTS can overlap with
    /// packing — the sub-protocol the paper's design prefers (default).
    #[default]
    Rput,
    /// Sender announces packed data with the RTS; the receiver pulls it
    /// with an RDMA READ. No handshake/packing overlap.
    Rget,
}

/// A rank (one process driving one GPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RankId(pub u32);

/// Internal simulation events.
#[derive(Debug)]
pub(crate) enum Event {
    /// (Re)start executing a rank's program.
    Wake(RankId),
    /// An asynchronous pack (kernel or staged copies) finished on the
    /// sender.
    PackDone(RankId, SendId),
    /// An asynchronous unpack finished on the receiver.
    UnpackDone(RankId, RecvId),
    /// A fused-kernel cooperative group signalled one request's completion.
    FusionDone(RankId, Uid),
    /// A wire message reached its destination. The key indexes
    /// [`Cluster::wire_slab`]: in-flight messages live in a slab and the
    /// event carries a `u32` instead of a boxed node, so steady-state
    /// traffic recycles message storage without touching the allocator.
    Deliver(u32),
    /// The initiator-side completion (CQE) of an RDMA write.
    SendComplete(RankId, SendId),
}

/// Builder for a simulated cluster run.
pub struct ClusterBuilder {
    platform: Platform,
    scheme: SchemeKind,
    data_mode: DataMode,
    gdrcopy: bool,
    trace_capacity: usize,
    telemetry: Option<Telemetry>,
    rndv: RndvProtocol,
    faults: Option<FaultPlan>,
    retry: RetryPolicy,
    topology: Option<TopologyHandle>,
    shards: u32,
    ranks: Vec<(u32, Program)>,
}

impl ClusterBuilder {
    pub fn new(platform: Platform, scheme: SchemeKind) -> Self {
        ClusterBuilder {
            platform,
            scheme,
            data_mode: DataMode::Full,
            gdrcopy: true,
            trace_capacity: 0,
            telemetry: None,
            rndv: RndvProtocol::default(),
            faults: None,
            retry: RetryPolicy::default_transfer(),
            topology: None,
            shards: 1,
            ranks: Vec::new(),
        }
    }

    /// Partition the event loop across `n` worker shards synchronized by
    /// conservative time windows (see the `shardrun` module). Reports are
    /// byte-identical to the single-queue run for every virtual-time
    /// quantity — armed fault plans included, since every fault decision is
    /// drawn from a per-rank stream or a stateless keyed hash; only
    /// wall-clock and queue-health diagnostics differ. The request is
    /// clamped at run time (to the node count, and to 1 when ranks are not
    /// node-contiguous or there is no lookahead) — `RunReport::shard.shards`
    /// echoes the effective value.
    pub fn shards(mut self, n: u32) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Route every transfer through an explicit topology instead of the
    /// flat scalar-link model: each send resolves a hop sequence and
    /// occupies every hop on it ([`fusedpack_net::TopoNet`]). Without this
    /// call the legacy flat path runs untouched — an explicit
    /// [`fusedpack_net::FlatLink`] is bit-identical to the default
    /// (enforced by the bench golden guard).
    pub fn topology(mut self, topo: TopologyHandle) -> Self {
        self.topology = Some(topo);
        self
    }

    /// Select the rendezvous sub-protocol (default: RPUT, which lets the
    /// handshake overlap with packing).
    pub fn rendezvous(mut self, rndv: RndvProtocol) -> Self {
        self.rndv = rndv;
        self
    }

    /// Arm deterministic fault injection: every decision the plan makes is
    /// drawn from its own seeded streams, so the same plan over the same
    /// programs reproduces the same faults. A plan whose every site has
    /// probability zero leaves the run bit-identical to a fault-free one.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Override the retry/backoff/deadline policy used to recover from
    /// injected wire and NIC faults (default:
    /// [`RetryPolicy::default_transfer`]).
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Keep a structured trace of up to `capacity` protocol and scheduling
    /// events (debugging aid; see [`Cluster::trace`]). A convenience over
    /// [`ClusterBuilder::telemetry`] with a capacity-capped recorder.
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Attach an external telemetry recorder: every layer of the stack
    /// (scheduler, GPUs, NICs, protocol engine, accounting) records typed
    /// events into it. Takes precedence over [`ClusterBuilder::with_trace`].
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Simulate a system without the GDRCopy kernel module (the paper notes
    /// it "may not be available in all HPC systems"): the hybrid/adaptive
    /// schemes must fall back to GPU kernels for every message.
    pub fn without_gdrcopy(mut self) -> Self {
        self.gdrcopy = false;
        self
    }

    /// Select whether buffers carry real bytes (`Full`, default: tests) or
    /// only timing is simulated (`ModelOnly`: benchmark sweeps).
    pub fn data_mode(mut self, mode: DataMode) -> Self {
        self.data_mode = mode;
        self
    }

    /// Add a rank running `program` on `node`.
    pub fn add_rank(mut self, node: u32, program: Program) -> Self {
        self.ranks.push((node, program));
        self
    }

    /// Instantiate the cluster: allocate GPU/host pools sized from the
    /// programs' declarations, initialize buffers, and seed the event loop.
    pub fn build(self) -> Cluster {
        assert!(!self.ranks.is_empty(), "need at least one rank");
        let num_nodes = self.ranks.iter().map(|&(n, _)| n).max().expect("ranks") + 1;
        let telemetry = match self.telemetry {
            Some(t) => t,
            None if self.trace_capacity > 0 => Telemetry::with_capacity(self.trace_capacity),
            None => Telemetry::disabled(),
        };
        // The single construction-time dispatch: scheme → strategy object.
        let engine = crate::registry::engine_for(&self.scheme, &self.platform);

        let mut ranks = Vec::new();
        let mut gpus = Vec::new();
        let mut staging_mems = Vec::new();
        let mut host_mems = Vec::new();
        // One scratch buffer reused across every random-init declaration.
        let mut init_scratch = Vec::new();
        // Each rank occupies the next GPU slot on its node, in add order.
        let mut endpoints = Vec::new();
        let mut node_slots: HashMap<u32, u32> = HashMap::new();

        for (idx, (node, program)) in self.ranks.into_iter().enumerate() {
            let slot = node_slots.entry(node).or_insert(0);
            endpoints.push(Endpoint::new(node, *slot));
            *slot += 1;
            let user_bytes: u64 = program.buffers.iter().map(|b| b.len + 256).sum::<u64>() + 4096;
            // Staging high-water estimate: every comm op may need a packed
            // buffer simultaneously within one Waitall epoch; programs
            // over-declare via their buffer sizes, so size generously.
            let staging_bytes = 2 * user_bytes + (1 << 20);

            let mut gpu = self.platform.make_gpu(user_bytes, self.data_mode);
            if !self.gdrcopy {
                gpu.gdr = fusedpack_gpu::GdrWindow::unavailable();
            }
            let mut rank = RankState::new(RankId(idx as u32), node, program);
            // Allocate and initialize declared buffers.
            for decl in rank.program.buffers.clone() {
                let ptr = gpu.mem.alloc(decl.len, 64);
                match decl.init {
                    BufInit::Zero => {}
                    BufInit::Random(seed) => {
                        if self.data_mode == DataMode::Full {
                            let mut rng = Pcg32::new(seed, idx as u64);
                            init_scratch.clear();
                            init_scratch.resize(decl.len as usize, 0);
                            rng.fill_bytes(&mut init_scratch);
                            gpu.mem.write(ptr, &init_scratch);
                        }
                    }
                }
                rank.bufs.push(ptr);
            }
            let tele_r = telemetry.for_rank(idx as u32);
            gpu.set_telemetry(tele_r.clone());
            if let Some(sched) = engine.make_scheduler(&gpu, tele_r.clone()) {
                rank.sched = Some(sched);
            }
            rank.tele = tele_r;
            ranks.push(rank);
            gpus.push(gpu);
            staging_mems.push(MemPool::new(staging_bytes, self.data_mode));
            host_mems.push(MemPool::new(staging_bytes, self.data_mode));
        }

        // NIC events are tagged with the lowest rank on the NIC's node so
        // they appear under that rank's process in the Perfetto view.
        let nics: Vec<Nic> = (0..num_nodes)
            .map(|node| {
                let mut nic = self.platform.make_nic();
                let owner = ranks
                    .iter()
                    .position(|r| r.node == node)
                    .unwrap_or(node as usize) as u32;
                nic.set_telemetry(telemetry.for_rank(owner));
                nic
            })
            .collect();
        let mut events = EventQueue::new();
        for (r, rank) in ranks.iter_mut().enumerate() {
            // The seed Wake is the rank's first canonical key draw.
            let key = (r as u64) << KEY_RANK_SHIFT;
            rank.key_counter = 1;
            events.push_at_key(Time::ZERO, key, Event::Wake(RankId(r as u32)));
        }

        // A misconfigured topology (too few nodes, more ranks on a node
        // than its island holds) is a build-time error, not a runtime
        // fault: fail loudly with the typed error's message.
        let faults = self.faults;
        let topo = self.topology.map(|t| {
            for &ep in &endpoints {
                if let Err(e) = validate_endpoint(t.as_ref(), ep) {
                    panic!("cluster does not fit topology '{}': {e}", t.name());
                }
            }
            let mut net = TopoNet::new(t);
            // Arm the fabric fault domain when the plan carries per-hop
            // sites. Flat topologies have no path diversity (nothing to
            // reroute around), so their single wire stays fault-free at
            // the hop level — the link-scoped sites still apply.
            if let Some(plan) = faults.as_ref() {
                if plan.is_fabric_armed() && !net.topology().is_flat() {
                    net.arm_faults(plan.clone());
                }
            }
            net
        });

        Cluster {
            platform: self.platform,
            engine,
            data_mode: self.data_mode,
            events,
            ranks: Ranged::from_vec(ranks),
            gpus: Ranged::from_vec(gpus),
            staging_mems: Ranged::from_vec(staging_mems),
            host_mems: Ranged::from_vec(host_mems),
            nics: Ranged::from_vec(nics),
            rndv: self.rndv,
            topo,
            endpoints,
            intra_links: HashMap::new(),
            buf_pool: BufferPool::new(),
            wire_slab: Slab::new(),
            telemetry,
            faults,
            fault_stats: FaultSummary::default(),
            retry: self.retry,
            shards_requested: self.shards,
            cur_event: (Time::ZERO, 0),
            defer_transmits: false,
            pending: Vec::new(),
            pending_seq: 0,
            rank_shard: Vec::new(),
            outboxes: Vec::new(),
            shard_stats: ShardStats::default(),
            absorbed_pool: fusedpack_gpu::PoolStats::default(),
        }
    }
}

/// The running cluster.
pub struct Cluster {
    pub(crate) platform: Platform,
    /// The data-plane strategy object for the selected scheme (the only
    /// remnant of the `SchemeKind` the cluster was built with).
    pub(crate) engine: Arc<dyn SchemeEngine>,
    pub(crate) data_mode: DataMode,
    pub(crate) events: EventQueue<Event>,
    /// Per-rank state, indexed by *global* rank id. In a sharded run each
    /// worker's cluster owns a contiguous sub-range; the `Ranged` wrapper
    /// translates the global indices every protocol path uses.
    pub(crate) ranks: Ranged<RankState>,
    pub(crate) gpus: Ranged<Gpu>,
    /// Device staging pools (packed buffers), reset at each Waitall exit.
    pub(crate) staging_mems: Ranged<MemPool>,
    /// Host staging pools (hybrid CPU path, naive libraries, bounce
    /// buffers), reset with the device staging pools.
    pub(crate) host_mems: Ranged<MemPool>,
    /// One NIC per node, indexed by global node id.
    pub(crate) nics: Ranged<Nic>,
    /// Rendezvous sub-protocol.
    pub(crate) rndv: RndvProtocol,
    /// Live topology network state (None: the legacy flat path runs with
    /// zero overhead beyond one untaken branch per transport).
    pub(crate) topo: Option<TopoNet>,
    /// Per-rank (node, gpu-slot) endpoints, validated against the
    /// topology at build time.
    pub(crate) endpoints: Vec<Endpoint>,
    /// Lazily created intra-node GPU↔GPU links, keyed by (node, node).
    pub(crate) intra_links: HashMap<(u32, u32), Link>,
    /// Freelist of staged payload buffers: eager/rendezvous copies and IPC
    /// gathers recycle their `Vec<u8>`s here instead of allocating per
    /// message.
    pub(crate) buf_pool: BufferPool,
    /// In-flight wire messages, keyed by the `u32` inside
    /// [`Event::Deliver`]; recycled indices keep per-message storage off
    /// the global allocator.
    pub(crate) wire_slab: Slab<WireMsg>,
    /// Root telemetry handle (disabled unless the builder attached one).
    pub(crate) telemetry: Telemetry,
    /// Deterministic fault plan (None: the hot paths take a single
    /// untaken-branch hit and behave bit-identically to the pre-fault code).
    pub(crate) faults: Option<FaultPlan>,
    /// Injection/recovery accounting for the final [`RunReport`].
    pub(crate) fault_stats: FaultSummary,
    /// Retry/backoff/deadline policy for recovering injected wire faults.
    /// Backoff jitter is keyed ([`RetryPolicy::backoff_keyed`]) by the
    /// transfer's canonical event key, so retries draw identical jitter at
    /// any shard count.
    pub(crate) retry: RetryPolicy,
    /// Worker shards requested via [`ClusterBuilder::shards`] (clamped at
    /// run time; 1 = the single-queue loop).
    pub(crate) shards_requested: u32,
    /// (time, key) of the event currently being dispatched. Sharded topo
    /// runs use it to order deferred transmits exactly as the single
    /// queue would have executed them.
    pub(crate) cur_event: (Time, u64),
    /// Sharded topology mode: record wire transmits as
    /// [`PendingTransmit`]s instead of executing them (the master network
    /// lives with the coordinator between barriers).
    pub(crate) defer_transmits: bool,
    /// Deferred routed transmits for the current round.
    pub(crate) pending: Vec<PendingTransmit>,
    /// Monotone sequence disambiguating transmits within one dispatch.
    pub(crate) pending_seq: u64,
    /// Global rank → owning shard (empty outside sharded runs).
    pub(crate) rank_shard: Vec<u32>,
    /// Outgoing cross-shard deliveries, one mailbox per destination
    /// shard, drained by the coordinator at each barrier.
    pub(crate) outboxes: Vec<Mailbox<(Time, u64, WireMsg)>>,
    /// Barrier/stall counters (all-zero for single-queue runs).
    pub(crate) shard_stats: ShardStats,
    /// Buffer-pool counters absorbed from shard-local pools at recompose,
    /// folded into [`Cluster::staging_pool_stats`].
    pub(crate) absorbed_pool: fusedpack_gpu::PoolStats,
}

/// Results of a completed run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Lap durations recorded by each rank (`RecordLap` ops).
    pub laps: Vec<Vec<Duration>>,
    /// Per-rank Fig.-11 cost buckets (cumulative over the whole run).
    pub breakdowns: Vec<crate::breakdown::Breakdown>,
    /// Per-rank, per-lap breakdown deltas (aligned with `laps`).
    pub lap_breakdowns: Vec<Vec<crate::breakdown::Breakdown>>,
    /// Fusion scheduler statistics per rank (None for other schemes).
    pub sched_stats: Vec<Option<SchedStats>>,
    /// Kernel launches per rank's GPU.
    pub kernels_launched: Vec<u64>,
    /// Virtual end time of the whole run.
    pub end_time: Time,
    /// Events processed (diagnostics).
    pub events_processed: u64,
    /// Release-mode past-event clamps in the event queue (a determinism
    /// hazard; always zero in debug builds, which panic instead).
    pub event_clamps: ClampStats,
    /// Event-queue timing-wheel health: overflow-bucket hits, cascades,
    /// slots drained (`events_processed / slots_drained` ≈ events per
    /// wheel tick), and the event slab's occupancy high-water mark.
    pub wheel: WheelStats,
    /// Peak simultaneously in-flight wire messages in the message slab —
    /// allocator churn under sustained load is `high_water ×
    /// size_of::<WireMsg>()`, not one heap node per message.
    pub wire_high_water: u32,
    /// Fault-injection and recovery accounting. All-zero (`is_clean`) on
    /// fault-free runs with no ring backpressure.
    pub fault_summary: FaultSummary,
    /// Fabric-level fault-domain accounting (per-hop injections, health
    /// transitions, reroutes, rail failovers, forced deliveries). All-zero
    /// unless a topology is attached and its fault domain armed.
    pub fabric: FabricHealth,
    /// Sharded-execution health: effective shard count, barriers crossed,
    /// admitted/deferred message counts, mailbox spills, and wall-clock
    /// barrier/stall time. All-zero for single-queue runs.
    pub shard: ShardStats,
    /// Layout-compiler cache health, aggregated over every rank's sharded
    /// cache: commit/acquire hit counts, LRU evictions, and resident
    /// compiled-plan bytes. Acquires are cost-free in virtual time, so
    /// these counters never perturb timing — they report how much flatten
    /// work the cache amortized.
    pub layout_cache: fusedpack_datatype::LayoutCacheStats,
}

impl RunReport {
    /// Max lap `i` across ranks — the iteration's makespan, the paper's
    /// reported latency.
    pub fn lap_makespan(&self, i: usize) -> Duration {
        self.laps
            .iter()
            .filter_map(|laps| laps.get(i).copied())
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Number of laps recorded by every rank.
    pub fn lap_count(&self) -> usize {
        self.laps.iter().map(|l| l.len()).min().unwrap_or(0)
    }

    /// Makespan of the final lap (warm caches) — the headline number.
    pub fn final_lap(&self) -> Duration {
        let n = self.lap_count();
        if n == 0 {
            Duration::ZERO
        } else {
            self.lap_makespan(n - 1)
        }
    }
}

impl Cluster {
    /// Run every rank's program to completion — on the single event
    /// queue, or partitioned across worker shards when the builder asked
    /// for them and the run qualifies (see `shardrun`). Both paths
    /// produce byte-identical reports for every virtual-time quantity.
    pub fn run(&mut self) -> RunReport {
        let shards = self.effective_shards();
        if shards > 1 {
            self.run_sharded(shards)
        } else {
            self.run_single()
        }
    }

    fn run_single(&mut self) -> RunReport {
        let mut clamps_seen = self.events.clamp_stats();
        while let Some((t, ev)) = self.events.pop() {
            self.dispatch(t, ev);
            // Surface any past-event clamp the dispatch just caused: it
            // rewrote a computed timestamp, which deserves a visible mark
            // on the timeline, not a silent repair.
            let clamps_now = self.events.clamp_stats();
            if clamps_now.count > clamps_seen.count {
                let skew = clamps_now.total_skew - clamps_seen.total_skew;
                self.telemetry
                    .instant(Lane::Host, self.events.now(), || Payload::ClampedEvent {
                        skew_ns: skew.as_nanos(),
                    });
                clamps_seen = clamps_now;
            }
        }
        let end_time = self.events.now();
        let events_processed = self.events.processed();
        let event_clamps = self.events.clamp_stats();
        let wheel = self.events.wheel_stats();
        let wire_high_water = self.wire_slab.high_water();
        self.finish_report(
            end_time,
            events_processed,
            event_clamps,
            wheel,
            wire_high_water,
        )
    }

    /// Post-run assertions, the end-of-run health snapshot, and report
    /// assembly. `run_single` feeds its own queue's counters; sharded
    /// runs feed aggregates merged across shard queues.
    pub(crate) fn finish_report(
        &mut self,
        end_time: Time,
        events_processed: u64,
        event_clamps: ClampStats,
        wheel: WheelStats,
        wire_high_water: u32,
    ) -> RunReport {
        // A clean chaos run must not clamp: fold the queue counter into the
        // fault summary so `FaultSummary::is_clean` covers timeline repairs.
        self.fault_stats.event_clamps += event_clamps.count;
        for rank in self.ranks.iter() {
            assert!(
                rank.done,
                "rank {:?} deadlocked at pc={} (blocked={})",
                rank.id, rank.pc, rank.blocked
            );
        }
        debug_assert!(self.wire_slab.is_empty(), "wire messages leaked");
        // One end-of-run health snapshot; free when telemetry is disabled
        // (the closure never runs).
        self.telemetry
            .instant(Lane::Host, end_time, || Payload::QueueHealth {
                event_slab_high_water: wheel.slab_high_water,
                wire_slab_high_water: wire_high_water,
                overflow_hits: wheel.overflow_hits,
                slots_drained: wheel.slots_drained,
                events: events_processed,
            });
        // Layout-compiler cache health, merged across ranks. Sharded runs
        // recompose every rank (cache included) before reaching here, so
        // the aggregate is identical at any shard count.
        let mut layout_cache = fusedpack_datatype::LayoutCacheStats::default();
        for rank in self.ranks.iter() {
            layout_cache.absorb(&rank.ddt_cache.layout_stats());
        }
        {
            let lc = &layout_cache;
            self.telemetry
                .instant(Lane::Host, end_time, || Payload::LayoutCacheHealth {
                    hits: lc.hits(),
                    misses: lc.misses(),
                    evictions: lc.evictions(),
                    resident_bytes: lc.resident_bytes(),
                    high_water_bytes: lc.high_water_bytes(),
                });
        }
        RunReport {
            laps: self.ranks.iter().map(|r| r.laps.clone()).collect(),
            breakdowns: self.ranks.iter().map(|r| r.breakdown).collect(),
            lap_breakdowns: self
                .ranks
                .iter()
                .map(|r| r.lap_breakdowns.clone())
                .collect(),
            sched_stats: self
                .ranks
                .iter()
                .map(|r| r.sched.as_ref().map(|s| s.stats()))
                .collect(),
            kernels_launched: self.gpus.iter().map(|g| g.kernels_launched()).collect(),
            end_time,
            events_processed,
            event_clamps,
            wheel,
            wire_high_water,
            fault_summary: self.fault_stats,
            fabric: self
                .topo
                .as_ref()
                .map(|net| net.fabric_health())
                .unwrap_or_default(),
            shard: self.shard_stats,
            layout_cache,
        }
    }

    /// Read back a rank's buffer (tests verify end-to-end transfers).
    pub fn rank_buffer(&self, rank: RankId, buf: crate::program::BufId) -> Vec<u8> {
        let r = &self.ranks[rank.0 as usize];
        let ptr = r.bufs[buf.0];
        self.gpus[rank.0 as usize].mem.read(ptr).to_vec()
    }

    fn dispatch(&mut self, t: Time, ev: Event) {
        match ev {
            Event::Wake(r) => self.step_rank(r.0 as usize, t),
            Event::PackDone(r, sid) => self.on_pack_done(r.0 as usize, sid, t),
            Event::UnpackDone(r, rid) => self.on_unpack_done(r.0 as usize, rid, t),
            Event::FusionDone(r, uid) => self.on_fusion_done(r.0 as usize, uid, t),
            Event::Deliver(key) => {
                let msg = self.wire_slab.remove(key);
                self.on_deliver(msg, t)
            }
            Event::SendComplete(r, sid) => self.on_send_complete(r.0 as usize, sid, t),
        }
    }

    /// Effective processing time for rank work arriving at wall time `t`.
    pub(crate) fn eff_now(&self, r: usize, t: Time) -> Time {
        t.max(self.ranks[r].cpu)
    }

    /// Draw the next canonical event key for an event rank `r`
    /// originates: `(rank << 42) | counter`, advancing the rank's
    /// counter. Each rank draws in its own program order, so the sequence
    /// of keys is identical no matter how ranks are interleaved across
    /// shards — the determinism anchor of the sharded loop.
    #[inline]
    pub(crate) fn next_key(&mut self, r: usize) -> u64 {
        let rank = &mut self.ranks[r];
        let c = rank.key_counter;
        rank.key_counter += 1;
        debug_assert!(c < 1 << KEY_RANK_SHIFT, "rank event counter overflow");
        ((rank.id.0 as u64) << KEY_RANK_SHIFT) | c
    }

    /// Park a wire message in the slab and schedule its delivery under a
    /// pre-drawn canonical key. Deliveries addressed to a rank another
    /// shard owns go to that shard's outbox instead, admitted by the
    /// coordinator at the next window barrier.
    pub(crate) fn push_deliver(&mut self, at: Time, key: u64, msg: WireMsg) {
        let dst = msg.dst.0 as usize;
        if !self.ranks.contains_index(dst) {
            let shard = self.rank_shard[dst] as usize;
            self.outboxes[shard].push((at, key, msg));
            return;
        }
        let slab_key = self.wire_slab.insert(msg);
        self.events.push_at_key(at, key, Event::Deliver(slab_key));
    }

    /// Fetch the intra-node link between two nodes' GPUs, creating it on
    /// first use.
    pub(crate) fn intra_link(&mut self, a: u32, b: u32) -> &mut Link {
        let key = (a.min(b), a.max(b));
        let spec = self.platform.gpu_gpu.clone();
        self.intra_links
            .entry(key)
            .or_insert_with(|| Link::new(spec))
    }

    // ---- fault-injection hooks ------------------------------------------
    //
    // Every hook early-outs on `faults == None` (one untaken branch) and,
    // with a plan, on `probability <= 0` *before* drawing from the site's
    // RNG — which is what keeps no-plan and all-zero-plan runs bit-identical
    // to the pre-fault code (enforced by tests).

    /// Should a fault fire at `site` right now for rank `r`? Draws from
    /// the rank's own decision stream (shard-safe: a rank's events execute
    /// in the same relative order at any shard count), counts the
    /// injection, and marks the rank's timeline when it fires.
    pub(crate) fn fault_fires(&mut self, r: usize, site: FaultSite, at: Time) -> bool {
        let Some(plan) = self.faults.as_mut() else {
            return false;
        };
        if !plan.fires(site, r as u32) {
            return false;
        }
        self.fault_stats.injected += 1;
        self.ranks[r]
            .tele
            .instant(Lane::Host, at, || Payload::FaultInjected { site });
        true
    }

    /// Draw the latency spike for a site that just fired for rank `r`.
    pub(crate) fn fault_spike(&mut self, r: usize, site: FaultSite) -> Duration {
        self.faults
            .as_mut()
            .map_or(Duration::ZERO, |plan| plan.spike(site, r as u32))
    }

    /// Drain fabric state transitions from `net` and emit them as
    /// telemetry instants on the triggering sender's timeline.
    pub(crate) fn emit_fabric_events(&mut self, net: &mut TopoNet, src: usize) {
        for ev in net.drain_fabric_events() {
            let tele = &self.ranks[src].tele;
            match ev {
                FabricEvent::HopDown { hop, at } => {
                    tele.instant(Lane::Nic, at, || Payload::HopDown { hop });
                }
                FabricEvent::Rerouted { src, dst, at } => {
                    tele.instant(Lane::Nic, at, || Payload::Rerouted { src, dst });
                }
                FabricEvent::RailFailover { hop, at } => {
                    tele.instant(Lane::Nic, at, || Payload::RailFailover { hop });
                }
            }
        }
    }

    /// Record a retry decision (telemetry + counters).
    pub(crate) fn fault_retry(
        &mut self,
        r: usize,
        site: FaultSite,
        attempt: u32,
        backoff: Duration,
        at: Time,
    ) {
        self.fault_stats.retried += 1;
        let backoff_ns = backoff.as_nanos();
        self.ranks[r]
            .tele
            .instant(Lane::Host, at, || Payload::Retry {
                site,
                attempt,
                backoff_ns,
            });
    }

    /// Record a degradation-ladder step (telemetry + counters).
    pub(crate) fn fault_degraded(
        &mut self,
        r: usize,
        site: FaultSite,
        action: &'static str,
        at: Time,
    ) {
        self.fault_stats.degraded += 1;
        self.ranks[r]
            .tele
            .instant(Lane::Host, at, || Payload::Degraded { site, action });
    }

    /// Record a transparently absorbed fault (latency added, data intact).
    pub(crate) fn fault_recovered(&mut self, added: Duration) {
        self.fault_stats.recovered += 1;
        self.fault_stats.added_latency += added;
    }
}

impl Cluster {
    /// The data mode this cluster was built with.
    pub fn mode(&self) -> DataMode {
        self.data_mode
    }

    /// Fault-injection accounting so far (also returned in the
    /// [`RunReport`]).
    pub fn fault_summary(&self) -> FaultSummary {
        self.fault_stats
    }

    /// Acquire/release counters of the staged-payload buffer pool
    /// (diagnostics: steady-state traffic should be all hits). After a
    /// sharded run this is the merged total over every shard-local pool.
    pub fn staging_pool_stats(&self) -> fusedpack_gpu::PoolStats {
        let mut s = self.buf_pool.stats();
        s.hits += self.absorbed_pool.hits;
        s.misses += self.absorbed_pool.misses;
        s.released += self.absorbed_pool.released;
        s.dropped += self.absorbed_pool.dropped;
        s
    }

    /// Per-hop FIFO order violations observed by the routed network
    /// (always zero; asserted by the shard-window property tests). `None`
    /// without a topology.
    pub fn topo_order_violations(&self) -> Option<u64> {
        self.topo.as_ref().map(|net| net.order_violations())
    }

    /// The telemetry handle this cluster records into (disabled unless the
    /// builder attached one via [`ClusterBuilder::telemetry`] or
    /// [`ClusterBuilder::with_trace`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// A legacy flat trace view, synthesized from the typed telemetry
    /// timeline (empty unless tracing was enabled at build time). Events
    /// are ordered by time; components group the payload categories
    /// (`fusion` for scheduler decisions, `wire` for protocol/network
    /// traffic, `gpu`, `pack`, `sync`, `bucket`, `marker`).
    pub fn trace(&self) -> Trace {
        let snap = self.telemetry.snapshot();
        let mut events = snap.events;
        events.sort_by_key(|e| (e.start, e.rank));
        let mut trace = Trace::enabled(events.len().max(1));
        for e in &events {
            let component = match e.payload.category() {
                "sched" => "fusion",
                "net" => "wire",
                other => other,
            };
            let message = match e.dur {
                Some(d) => format!("rank {}: {:?} (+{} ns)", e.rank, e.payload, d.as_nanos()),
                None => format!("rank {}: {:?}", e.rank, e.payload),
            };
            trace.record(e.start, component, message);
        }
        trace
    }
}
