//! The paper's proposed dynamic kernel fusion (and its adaptive variant):
//! pack/unpack/DirectIPC requests enqueue into the per-rank fusion
//! scheduler ring and launch as one cooperative fused kernel per flush
//! (§IV-A2 ②), with the RTS/CTS handshake overlapping the packing.

use super::super::accounting::Bucket;
use super::super::rank::{OpRef, RequeuedOp};
use super::{Event, PathCtx, SchemeEngine};
use crate::lifecycle::LifecycleEvent;
use crate::message::WireKind;
use crate::sendrecv::{RecvId, SendId, StagingLoc};
use fusedpack_core::{EnqueueError, FlushReason, FusionConfig, FusionOp, Scheduler, Uid};
use fusedpack_datatype::cache::lookup_cost;
use fusedpack_gpu::{Gpu, SegmentStats, StreamId};
use fusedpack_sim::{FaultSite, Time};
use fusedpack_telemetry::Telemetry;

pub(crate) struct FusionEngine {
    cfg: FusionConfig,
    adaptive: bool,
}

impl FusionEngine {
    pub(crate) fn new(cfg: FusionConfig, adaptive: bool) -> Self {
        FusionEngine { cfg, adaptive }
    }

    /// Launch one fused kernel over the pending requests (§IV-A2 ②).
    fn flush(&self, cx: &mut PathCtx<'_>, reason: FlushReason) {
        let r = cx.r;
        let mut sched = cx.cl.ranks[r].sched.take().expect("fusion scheme");
        loop {
            if !sched.has_pending() {
                break;
            }
            let now = cx.cl.ranks[r].cpu;
            // Degradation ladder: a failed cooperative launch costs one
            // wasted driver call, then the batch runs as serial per-request
            // kernels instead of one fused grid.
            let degraded = cx.cl.fault_fires(r, FaultSite::FusedLaunchFail, now);
            let batch = if degraded {
                let wasted = cx.cl.gpus[r].arch.launch_cpu;
                cx.cl.ranks[r].cpu += wasted;
                cx.cl.bucket_add_at(r, Bucket::Launch, now, wasted);
                cx.cl
                    .fault_degraded(r, FaultSite::FusedLaunchFail, "serial-kernels", now);
                let at = cx.cl.ranks[r].cpu;
                sched.flush_degraded(at, &mut cx.cl.gpus[r], StreamId(0), reason)
            } else {
                sched.flush(now, &mut cx.cl.gpus[r], StreamId(0), reason)
            };
            let Some(batch) = batch else {
                break;
            };
            // A degraded flush pays one launch per request, a fused one a
            // single cooperative launch.
            let launches = if degraded { batch.uids.len() as u64 } else { 1 };
            let launch_cpu = cx.cl.gpus[r].arch.launch_cpu * launches;
            cx.cl.ranks[r].cpu = batch.launch.cpu_release;
            cx.cl.bucket_add_at(r, Bucket::Launch, now, launch_cpu);
            cx.cl.bucket_add_at(
                r,
                Bucket::Pack,
                batch.launch.start,
                batch.launch.done.since(batch.launch.start),
            );
            let rank_id = cx.cl.ranks[r].id;
            for (&uid, &done) in batch.uids.iter().zip(&batch.launch.request_done) {
                let mut done = done;
                if cx.cl.fault_fires(r, FaultSite::FusedFlagLost, done) {
                    // The per-request completion flag never lands; the
                    // progress engine's watchdog re-polls the ring and
                    // rescues the request one spike later. Data movement is
                    // unaffected (it was applied at enqueue).
                    let spike = cx.cl.fault_spike(r, FaultSite::FusedFlagLost);
                    cx.cl.fault_recovered(spike);
                    done += spike;
                }
                cx.schedule(done, Event::FusionDone(rank_id, uid));
            }
            // One batch per flush unless more than max_fused were pending.
            if !sched.has_pending() {
                break;
            }
        }
        cx.cl.ranks[r].sched = Some(sched);
    }

    /// Enqueue a fusion request for a send (pack) or recv (unpack).
    fn enqueue(
        &self,
        cx: &mut PathCtx<'_>,
        op: FusionOp,
        idx: usize,
        is_send: bool,
    ) -> Result<Uid, EnqueueError> {
        let r = cx.r;
        // Injected exhaustion reports `RingFull` without touching the ring;
        // the caller's backpressure ladder recovers exactly as it would
        // from a genuinely full ring.
        let at = cx.cl.ranks[r].cpu;
        if cx.cl.fault_fires(r, FaultSite::RingExhausted, at) {
            return Err(EnqueueError::RingFull);
        }
        let (origin, target, layout, count) = if is_send {
            let s = &cx.cl.ranks[r].sends[idx];
            let StagingLoc::Gpu(staging) = s.staging else {
                panic!("fusion pack staging must be on the GPU");
            };
            (s.user_buf, staging, s.layout.clone(), s.count)
        } else {
            let op = &cx.cl.ranks[r].recvs[idx];
            let StagingLoc::Gpu(staging) = op.staging else {
                panic!("fusion unpack staging must be on the GPU");
            };
            (staging, op.user_buf, op.layout.clone(), op.count)
        };
        // Unpack data movement is applied at enqueue time: the payload is
        // already in staging, and results only become visible at the
        // completion event.
        if !is_send {
            cx.cl.apply_unpack_movement(r, RecvId(idx));
        }
        let now = cx.cl.ranks[r].cpu;
        let sched = cx.cl.ranks[r].sched.as_mut().expect("fusion scheme");
        let (res, cost) = sched.enqueue(now, op, origin, target, layout, count, None);
        cx.charge(cost, Bucket::Scheduling);
        res
    }

    /// Enqueue the DirectIPC fusion request for receive `rid` (shared by
    /// [`FusionEngine::begin_direct_ipc`] and the backpressure requeue
    /// drain).
    fn enqueue_ipc(
        &self,
        cx: &mut PathCtx<'_>,
        rid: usize,
        origin: u64,
    ) -> Result<Uid, EnqueueError> {
        let r = cx.r;
        let now = cx.cl.ranks[r].cpu;
        if cx.cl.fault_fires(r, FaultSite::RingExhausted, now) {
            return Err(EnqueueError::RingFull);
        }
        let link_bw = cx.cl.platform.gpu_gpu.bw;
        let (origin_ptr, target, layout, count) = {
            let op = &cx.cl.ranks[r].recvs[rid];
            (
                fusedpack_gpu::DevPtr {
                    addr: origin,
                    len: op.user_buf.len,
                },
                op.user_buf,
                op.layout.clone(),
                op.count,
            )
        };
        let sched = cx.cl.ranks[r].sched.as_mut().expect("fusion scheme");
        let (res, cost) = sched.enqueue(
            now,
            FusionOp::DirectIpc,
            origin_ptr,
            target,
            layout,
            count,
            Some(link_bw),
        );
        cx.charge(cost, Bucket::Scheduling);
        res
    }

    /// The ring refused an enqueue: run the backpressure ladder.
    ///
    /// Step one, force a `RingPressure` flush so pending occupants become
    /// busy and start draining. Step two, park the operation in the rank's
    /// FIFO requeue ladder, to re-enqueue from
    /// [`FusionEngine::drain_requeue`] once a retirement frees a slot.
    /// Returns `false` — caller falls back to the paper's synchronous path —
    /// only when the ring is *empty*, so no retirement will ever drain the
    /// queue (an injected exhaustion); a genuinely full ring always has
    /// occupants on their way to retirement, keeping the requeue live.
    fn backpressure(&self, cx: &mut PathCtx<'_>, op: RequeuedOp) -> bool {
        self.flush(cx, FlushReason::RingPressure);
        let r = cx.r;
        let occupied = cx.cl.ranks[r]
            .sched
            .as_ref()
            .expect("fusion scheme")
            .ring_occupied();
        if occupied == 0 {
            return false;
        }
        let now = cx.cl.ranks[r].cpu;
        cx.cl
            .fault_degraded(r, FaultSite::RingExhausted, "requeue", now);
        cx.cl.ranks[r].fusion_requeue.park(op);
        true
    }

    /// Re-enqueue operations parked by the backpressure ladder, in FIFO
    /// order, until the ring refuses again (then wait for the next
    /// retirement) or the queue drains.
    fn drain_requeue(&self, cx: &mut PathCtx<'_>) {
        let r = cx.r;
        let mut enqueued = false;
        while let Some(op) = cx.cl.ranks[r].fusion_requeue.take_next() {
            let res = match op {
                RequeuedOp::Pack(i) => self.enqueue(cx, FusionOp::Pack, i, true),
                RequeuedOp::Unpack(i) => self.enqueue(cx, FusionOp::Unpack, i, false),
                RequeuedOp::DirectIpc { rid, origin } => self.enqueue_ipc(cx, rid, origin),
            };
            match res {
                Ok(uid) => {
                    register_uid(cx, op, uid);
                    enqueued = true;
                }
                Err(EnqueueError::RingFull) => {
                    let occupied = cx.cl.ranks[r]
                        .sched
                        .as_ref()
                        .expect("fusion scheme")
                        .ring_occupied();
                    if occupied == 0 {
                        // Nothing will ever retire: last-rung sync fallback
                        // keeps the rank live.
                        self.fallback_sync(cx, op);
                    } else {
                        cx.cl.ranks[r].fusion_requeue.park_front(op);
                        break;
                    }
                }
            }
        }
        // A rank blocked in Waitall gets no further flush trigger; launch
        // what was just re-enqueued so its completions can unblock it.
        if enqueued
            && cx.cl.ranks[r].blocked
            && cx.cl.ranks[r]
                .sched
                .as_ref()
                .is_some_and(|s| s.has_pending())
        {
            self.flush(cx, FlushReason::RingPressure);
        }
    }

    /// Last rung of the backpressure ladder: process a parked operation
    /// with the synchronous kernel scheme (the paper's negative-UID path).
    fn fallback_sync(&self, cx: &mut PathCtx<'_>, op: RequeuedOp) {
        match op {
            RequeuedOp::Pack(i) => {
                let (bytes, blocks) = {
                    let s = &cx.cl.ranks[cx.r].sends[i];
                    (s.packed_bytes, s.blocks)
                };
                cx.sync_kernel(SegmentStats::new(bytes, blocks), Bucket::Pack);
                cx.cl.ranks[cx.r].sends[i]
                    .lifecycle
                    .apply(LifecycleEvent::PackFinished);
                cx.try_issue(SendId(i));
            }
            RequeuedOp::Unpack(i) | RequeuedOp::DirectIpc { rid: i, .. } => {
                let (bytes, blocks) = {
                    let op = &cx.cl.ranks[cx.r].recvs[i];
                    (op.packed_bytes, op.blocks)
                };
                cx.sync_kernel(SegmentStats::new(bytes, blocks), Bucket::Pack);
                cx.finish_unpack(RecvId(i));
            }
        }
    }

    /// Fuse a DirectIPC request on the receiver: its cooperative groups
    /// will load the sender's buffer over NVLink/PCIe straight into the
    /// local user buffer — no staging, no wire payload.
    fn begin_direct_ipc(&self, cx: &mut PathCtx<'_>, rid: RecvId, src: usize, origin: u64) {
        let r = cx.r;
        cx.charge(lookup_cost(), Bucket::Sync);
        // Apply the data movement now (visible at the completion event):
        // gather from the peer GPU, scatter into the local user buffer.
        // The sender's layout is taken to equal the receiver's committed
        // layout — valid for MPI's matched-signature transfers; a full
        // implementation would ship the sender's cached-layout handle in
        // the RTS, as [24] does for its IPC cache exchange.
        {
            let (layout, count, user_buf) = {
                let op = &cx.cl.ranks[r].recvs[rid.0];
                (op.layout.clone(), op.count, op.user_buf)
            };
            use crate::cluster::{copy_tier_for, CopyTier};
            let mut packed = cx.cl.buf_pool.take(layout.total_bytes(count) as usize);
            match copy_tier_for(&layout, origin, count) {
                CopyTier::Contiguous { bytes } => {
                    cx.cl.gpus[src]
                        .mem
                        .gather_into([(origin, bytes)], &mut packed);
                }
                CopyTier::Runs(plan) => {
                    cx.cl.gpus[src].mem.gather_into_uniform(plan, &mut packed);
                }
                CopyTier::Generic => {
                    cx.cl.gpus[src]
                        .mem
                        .gather_into(layout.abs_segments(origin, count), &mut packed);
                }
            }
            match copy_tier_for(&layout, user_buf.addr, count) {
                CopyTier::Contiguous { bytes } => {
                    cx.cl.gpus[r]
                        .mem
                        .scatter_from_slice_iter(&packed, [(user_buf.addr, bytes)]);
                }
                CopyTier::Runs(plan) => {
                    cx.cl.gpus[r].mem.scatter_from_slice_uniform(&packed, plan);
                }
                CopyTier::Generic => {
                    cx.cl.gpus[r].mem.scatter_from_slice_iter(
                        &packed,
                        layout.abs_segments(user_buf.addr, count),
                    );
                }
            }
            cx.cl.buf_pool.put(packed);
        }
        match self.enqueue_ipc(cx, rid.0, origin) {
            Ok(uid) => {
                cx.recv_mut(rid).fusion_uid = Some(uid);
                cx.recv_mut(rid)
                    .lifecycle
                    .apply(LifecycleEvent::PackStarted);
                cx.cl.ranks[r].uid_map.insert(uid, OpRef::Recv(rid.0));
                let sched = cx.cl.ranks[r].sched.as_ref().expect("fusion");
                if sched.threshold_reached() {
                    self.flush(cx, FlushReason::ThresholdReached);
                } else if !cx.cl.ranks[r].recvs_awaiting_data() {
                    self.flush(cx, FlushReason::SyncPoint);
                }
            }
            Err(EnqueueError::RingFull) => {
                let parked = self.backpressure(cx, RequeuedOp::DirectIpc { rid: rid.0, origin });
                if parked {
                    cx.recv_mut(rid)
                        .lifecycle
                        .apply(LifecycleEvent::PackStarted);
                } else {
                    // Fallback: a standalone link-capped kernel, synchronous.
                    let (bytes, blocks) = cx.recv_meta(rid);
                    let stats = SegmentStats::new(bytes, blocks);
                    cx.sync_kernel(stats, Bucket::Pack);
                    cx.finish_unpack(rid);
                }
            }
        }
    }

    /// DirectIPC degraded path: the peer's buffer could not be mapped, so
    /// the payload is staged — gathered on the sender's GPU into a pooled
    /// bounce buffer, bounced over the GPU↔GPU link, and scattered by a
    /// synchronous kernel — before the receive completes through the normal
    /// IPC path (Fin to the sender).
    fn ipc_staged_fallback(&self, cx: &mut PathCtx<'_>, rid: RecvId, src: usize, origin: u64) {
        let r = cx.r;
        cx.charge(lookup_cost(), Bucket::Sync);
        let (layout, count, user_buf, bytes, blocks) = {
            let op = &cx.cl.ranks[r].recvs[rid.0];
            (
                op.layout.clone(),
                op.count,
                op.user_buf,
                op.packed_bytes,
                op.blocks,
            )
        };
        // Data movement, visible at completion: same gather/scatter as the
        // zero-copy path, via the staged bounce buffer.
        {
            use crate::cluster::{copy_tier_for, CopyTier};
            let mut packed = cx.cl.buf_pool.take(layout.total_bytes(count) as usize);
            match copy_tier_for(&layout, origin, count) {
                CopyTier::Contiguous { bytes } => {
                    cx.cl.gpus[src]
                        .mem
                        .gather_into([(origin, bytes)], &mut packed);
                }
                CopyTier::Runs(plan) => {
                    cx.cl.gpus[src].mem.gather_into_uniform(plan, &mut packed);
                }
                CopyTier::Generic => {
                    cx.cl.gpus[src]
                        .mem
                        .gather_into(layout.abs_segments(origin, count), &mut packed);
                }
            }
            match copy_tier_for(&layout, user_buf.addr, count) {
                CopyTier::Contiguous { bytes } => {
                    cx.cl.gpus[r]
                        .mem
                        .scatter_from_slice_iter(&packed, [(user_buf.addr, bytes)]);
                }
                CopyTier::Runs(plan) => {
                    cx.cl.gpus[r].mem.scatter_from_slice_uniform(&packed, plan);
                }
                CopyTier::Generic => {
                    cx.cl.gpus[r].mem.scatter_from_slice_iter(
                        &packed,
                        layout.abs_segments(user_buf.addr, count),
                    );
                }
            }
            cx.cl.buf_pool.put(packed);
        }
        // Timing: the bounce rides the intra-node link, then a synchronous
        // scatter kernel lands it in the user buffer.
        let at = cx.cl.ranks[r].cpu;
        let (delivered, _) = cx.cl.transport(src, r, at, bytes, false, 0);
        cx.cl
            .bucket_add_at(r, Bucket::Comm, at, delivered.since(at));
        cx.cl.ranks[r].cpu = cx.cl.ranks[r].cpu.max(delivered);
        cx.sync_kernel(SegmentStats::new(bytes, blocks), Bucket::Pack);
        cx.finish_unpack(rid);
        // This receive may have been the one the zero-copy path counts on
        // to trigger the last-arrival flush — without it, earlier fused
        // DirectIPC requests would linger in the scheduler forever.
        let sched = cx.cl.ranks[r].sched.as_ref().expect("fusion scheme");
        if sched.has_pending() {
            if sched.threshold_reached() {
                self.flush(cx, FlushReason::ThresholdReached);
            } else if !cx.cl.ranks[r].recvs_awaiting_data() {
                self.flush(cx, FlushReason::SyncPoint);
            }
        }
    }
}

/// Register a successfully re-enqueued operation exactly as its original
/// `begin_*` path would have.
fn register_uid(cx: &mut PathCtx<'_>, op: RequeuedOp, uid: Uid) {
    let r = cx.r;
    match op {
        RequeuedOp::Pack(i) => {
            cx.cl.ranks[r].sends[i].fusion_uid = Some(uid);
            cx.cl.ranks[r].sends[i]
                .lifecycle
                .apply(LifecycleEvent::PackStarted);
            cx.cl.ranks[r].uid_map.insert(uid, OpRef::Send(i));
        }
        RequeuedOp::Unpack(i) | RequeuedOp::DirectIpc { rid: i, .. } => {
            cx.cl.ranks[r].recvs[i].fusion_uid = Some(uid);
            cx.cl.ranks[r].recvs[i]
                .lifecycle
                .apply(LifecycleEvent::PackStarted);
            cx.cl.ranks[r].uid_map.insert(uid, OpRef::Recv(i));
        }
    }
}

impl SchemeEngine for FusionEngine {
    fn begin_pack(&self, cx: &mut PathCtx<'_>, sid: SendId) {
        let r = cx.r;
        let (bytes, blocks, eager) = cx.send_meta(sid);
        let stats = SegmentStats::new(bytes, blocks);
        cx.charge(lookup_cost(), Bucket::Sync);
        let dst = cx.cl.ranks[r].sends[sid.0].dst;
        // Endpoint table, not rank state: `dst` may live on another shard.
        let same_node = cx.cl.endpoints[r].node == cx.cl.endpoints[dst.0 as usize].node;
        if self.cfg.enable_direct_ipc && same_node {
            // DirectIPC (the zero-copy scheme of [24], fused as a third
            // operation kind): no packing at all on the sender — advertise
            // the source buffer in the RTS and wait for the receiver's
            // fused load to finish (Fin).
            let (tag, origin, bytes) = {
                let s = &cx.cl.ranks[r].sends[sid.0];
                (s.tag, s.user_buf.addr, s.packed_bytes)
            };
            let lc = &mut cx.cl.ranks[r].sends[sid.0].lifecycle;
            lc.apply(LifecycleEvent::PackFinished);
            lc.apply(LifecycleEvent::RtsSent);
            lc.apply(LifecycleEvent::Issued);
            cx.cl.send_ctrl(
                r,
                dst,
                tag,
                WireKind::Rts {
                    send_id: sid,
                    packed_bytes: bytes,
                    ipc_origin: Some(origin),
                    rget: false,
                },
            );
            return;
        }
        let staging = cx.cl.alloc_send_staging(r, bytes, false);
        cx.send_mut(sid).staging = staging;
        cx.cl.apply_pack_movement(r, sid);
        // RPUT: RTS goes out before packing happens (§IV-B1), overlapping
        // the handshake with the fused kernel.
        cx.send_rts_or_issue(sid, eager);
        match self.enqueue(cx, FusionOp::Pack, sid.0, true) {
            Ok(uid) => {
                cx.send_mut(sid).fusion_uid = Some(uid);
                cx.send_mut(sid)
                    .lifecycle
                    .apply(LifecycleEvent::PackStarted);
                cx.cl.ranks[r].uid_map.insert(uid, OpRef::Send(sid.0));
                if cx.cl.ranks[r]
                    .sched
                    .as_ref()
                    .expect("fusion")
                    .threshold_reached()
                {
                    self.flush(cx, FlushReason::ThresholdReached);
                }
            }
            Err(EnqueueError::RingFull) => {
                // Backpressure ladder: force a pressure flush and park the
                // pack until a retirement frees a slot.
                if self.backpressure(cx, RequeuedOp::Pack(sid.0)) {
                    cx.send_mut(sid)
                        .lifecycle
                        .apply(LifecycleEvent::PackStarted);
                } else {
                    // Last rung — the paper's fallback path (negative UID):
                    // process this message with the synchronous kernel
                    // scheme.
                    cx.sync_kernel(stats, Bucket::Pack);
                    cx.send_mut(sid)
                        .lifecycle
                        .apply(LifecycleEvent::PackFinished);
                    cx.try_issue(sid);
                }
            }
        }
    }

    fn begin_unpack(&self, cx: &mut PathCtx<'_>, rid: RecvId) {
        let r = cx.r;
        let (bytes, blocks) = cx.recv_meta(rid);
        cx.charge(lookup_cost(), Bucket::Sync);
        match self.enqueue(cx, FusionOp::Unpack, rid.0, false) {
            Ok(uid) => {
                cx.recv_mut(rid).fusion_uid = Some(uid);
                cx.recv_mut(rid)
                    .lifecycle
                    .apply(LifecycleEvent::PackStarted);
                cx.cl.ranks[r].uid_map.insert(uid, OpRef::Recv(rid.0));
                let sched = cx.cl.ranks[r].sched.as_ref().expect("fusion");
                if sched.threshold_reached() {
                    self.flush(cx, FlushReason::ThresholdReached);
                } else if !cx.cl.ranks[r].recvs_awaiting_data() {
                    // No more arrivals can fuse with this batch: launching
                    // now is the paper's scenario 1 from the receiver's
                    // perspective.
                    self.flush(cx, FlushReason::SyncPoint);
                }
            }
            Err(EnqueueError::RingFull) => {
                if self.backpressure(cx, RequeuedOp::Unpack(rid.0)) {
                    cx.recv_mut(rid)
                        .lifecycle
                        .apply(LifecycleEvent::PackStarted);
                } else {
                    let stats = SegmentStats::new(bytes, blocks);
                    cx.sync_kernel(stats, Bucket::Pack);
                    cx.finish_unpack(rid);
                }
            }
        }
    }

    fn make_scheduler(&self, gpu: &Gpu, tele: Telemetry) -> Option<Scheduler> {
        let arch = if self.adaptive { Some(&gpu.arch) } else { None };
        Some(Scheduler::configured(self.cfg.clone(), arch, tele))
    }

    /// §IV-C scenario 1: the progress engine reached a synchronization
    /// point — flush any pending fusion requests immediately.
    fn on_sync_point(&self, cx: &mut PathCtx<'_>) {
        if cx.cl.ranks[cx.r]
            .sched
            .as_ref()
            .is_some_and(|s| s.has_pending())
        {
            self.flush(cx, FlushReason::SyncPoint);
        }
    }

    fn on_fusion_done(&self, cx: &mut PathCtx<'_>, uid: Uid, t: Time) {
        let r = cx.r;
        let eff = cx.cl.eff_now(r, t);
        cx.cl.account_wait(r, eff);
        let signalled = {
            let sched = cx.cl.ranks[r].sched.as_mut().expect("fusion scheme");
            sched.signal_completion(uid)
        };
        if !signalled {
            // A duplicate signal for an already-retired request (possible
            // under fault injection) is absorbed, not fatal.
            cx.cl.fault_stats.spurious += 1;
            return;
        }
        let (query_cost, complete_cost) = {
            let sched = cx.cl.ranks[r].sched.as_mut().expect("fusion scheme");
            let (done, qc) = sched.query(eff, uid);
            debug_assert!(done);
            (qc, sched.retire(eff, uid))
        };
        cx.cl.charge_at(r, eff, query_cost, Bucket::Sync);
        cx.cl.charge(r, complete_cost, Bucket::Scheduling);

        let Some(opref) = cx.cl.ranks[r].uid_map.remove(&uid) else {
            cx.cl.fault_stats.spurious += 1;
            return;
        };
        match opref {
            OpRef::Send(i) => {
                cx.cl.ranks[r].sends[i]
                    .lifecycle
                    .apply(LifecycleEvent::PackFinished);
                cx.try_issue(SendId(i));
            }
            OpRef::Recv(i) => cx.finish_unpack(RecvId(i)),
        }
        // The retirement freed a ring slot: operations parked by the
        // backpressure ladder can now re-enqueue.
        if !cx.cl.ranks[r].fusion_requeue.is_empty() {
            self.drain_requeue(cx);
        }
    }

    fn on_ipc_rts(&self, cx: &mut PathCtx<'_>, rid: RecvId, src: usize, origin: u64) {
        let r = cx.r;
        let at = cx.cl.ranks[r].cpu;
        if cx.cl.fault_fires(r, FaultSite::IpcMapFail, at) {
            // Degradation ladder: the IPC handle would not map — stage the
            // copy through a pooled bounce buffer instead.
            cx.cl
                .fault_degraded(r, FaultSite::IpcMapFail, "staged-copy", at);
            self.ipc_staged_fallback(cx, rid, src, origin);
        } else {
            self.begin_direct_ipc(cx, rid, src, origin);
        }
    }
}
