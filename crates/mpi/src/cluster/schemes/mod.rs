//! The scheme-engine layer: one strategy object per datatype-processing
//! design.
//!
//! Every scheme must answer two calls: [`SchemeEngine::begin_pack`] when an
//! `Isend` with a non-contiguous GPU buffer starts, and
//! [`SchemeEngine::begin_unpack`] when a payload lands in receive staging.
//! The differences between the paper's designs live entirely inside the
//! engine modules below — the control plane ([`Cluster`]'s protocol,
//! matching, and retry logic) never branches on the scheme again after
//! construction ([`crate::registry::engine_for`]).
//!
//! | module | engine | paper design |
//! |---|---|---|
//! | [`gpu_sync`] | [`GpuSyncEngine`] | GPU-Sync \[8, 22\] |
//! | [`gpu_async`] | [`GpuAsyncEngine`] | GPU-Async \[23\] |
//! | [`hybrid`] | [`HybridEngine`] | CPU-GPU-Hybrid \[24\] / MVAPICH2-GDR |
//! | [`naive`] | [`NaiveEngine`] | SpectrumMPI / OpenMPI |
//! | [`fusion`] | [`FusionEngine`] | Proposed / Proposed-Adaptive |

pub(crate) mod fusion;
pub(crate) mod gpu_async;
pub(crate) mod gpu_sync;
pub(crate) mod hybrid;
pub(crate) mod naive;

pub(crate) use fusion::FusionEngine;
pub(crate) use gpu_async::GpuAsyncEngine;
pub(crate) use gpu_sync::GpuSyncEngine;
pub(crate) use hybrid::HybridEngine;
pub(crate) use naive::NaiveEngine;

use super::accounting::Bucket;
use super::{Cluster, Event};
use crate::lifecycle::LifecycleEvent;
use crate::message::WireKind;
use crate::sendrecv::{RecvId, SendId, StagingLoc};
use fusedpack_core::{Scheduler, Uid};
use fusedpack_datatype::cache::lookup_cost;
use fusedpack_gpu::{Gpu, SegmentStats, StreamId};
use fusedpack_sim::{Duration, Time};
use fusedpack_telemetry::{Lane, Payload, Telemetry, WaitKindTag};

/// The data-plane strategy object: everything that differs between the
/// paper's schemes, behind one trait. Engines are stateless (per-message
/// state lives in the ops, per-rank state in [`super::rank::RankState`])
/// and shared by all ranks of a cluster.
pub(crate) trait SchemeEngine: Send + Sync {
    /// Start packing for a non-contiguous send (contiguous sends never
    /// reach the engine — they go in place from the user buffer).
    fn begin_pack(&self, cx: &mut PathCtx<'_>, sid: SendId);

    /// Start unpacking for a receive whose payload just landed in staging.
    fn begin_unpack(&self, cx: &mut PathCtx<'_>, rid: RecvId);

    /// Cost of detecting an asynchronous completion on rank `r`.
    fn completion_detect_cost(&self, cl: &Cluster, r: usize) -> Duration {
        let _ = r;
        cl.platform.progress_poll
    }

    /// Should a receive of this shape stage through host memory?
    fn host_recv_staging(&self, cl: &Cluster, r: usize, bytes: u64, blocks: u64) -> bool {
        let _ = (cl, r, bytes, blocks);
        false
    }

    /// Build the per-rank fusion scheduler, if this scheme uses one.
    fn make_scheduler(&self, gpu: &Gpu, tele: Telemetry) -> Option<Scheduler> {
        let _ = (gpu, tele);
        None
    }

    /// A rank reached a synchronization point (`Waitall` entry): flush
    /// whatever the data plane has been batching.
    fn on_sync_point(&self, cx: &mut PathCtx<'_>) {
        let _ = cx;
    }

    /// A fused-kernel cooperative group signalled a request's completion.
    /// Only the fusion engine ever schedules these; a stray event under a
    /// different scheme is absorbed as spurious.
    fn on_fusion_done(&self, cx: &mut PathCtx<'_>, uid: Uid, t: Time) {
        let _ = (uid, t);
        debug_assert!(false, "fusion completion under a non-fusion scheme");
        cx.cl.fault_stats.spurious += 1;
    }

    /// A DirectIPC RTS arrived for a matched receive. Only the fusion
    /// engine advertises IPC origins, so only it can receive this.
    fn on_ipc_rts(&self, cx: &mut PathCtx<'_>, rid: RecvId, src: usize, origin: u64) {
        let _ = (rid, src, origin);
        debug_assert!(false, "DirectIPC RTS under a non-fusion scheme");
        cx.cl.fault_stats.spurious += 1;
    }
}

/// Borrow view handed to an engine: the cluster plus the rank the call is
/// for. Engines reach shared control-plane helpers through the methods
/// below (or `cx.cl` directly for anything else).
pub(crate) struct PathCtx<'a> {
    pub cl: &'a mut Cluster,
    pub r: usize,
}

impl PathCtx<'_> {
    /// Send-op metadata: (packed_bytes, blocks, eager).
    pub(crate) fn send_meta(&self, sid: SendId) -> (u64, u64, bool) {
        let s = &self.cl.ranks[self.r].sends[sid.0];
        (s.packed_bytes, s.blocks, s.eager)
    }

    /// Recv-op metadata: (packed_bytes, blocks).
    pub(crate) fn recv_meta(&self, rid: RecvId) -> (u64, u64) {
        let op = &self.cl.ranks[self.r].recvs[rid.0];
        (op.packed_bytes, op.blocks)
    }

    pub(crate) fn send_mut(&mut self, sid: SendId) -> &mut crate::sendrecv::SendOp {
        &mut self.cl.ranks[self.r].sends[sid.0]
    }

    pub(crate) fn recv_mut(&mut self, rid: RecvId) -> &mut crate::sendrecv::RecvOp {
        &mut self.cl.ranks[self.r].recvs[rid.0]
    }

    pub(crate) fn charge(&mut self, cost: Duration, bucket: Bucket) {
        self.cl.charge(self.r, cost, bucket);
    }

    pub(crate) fn sync_kernel(&mut self, stats: SegmentStats, kernel_bucket: Bucket) {
        self.cl.sync_kernel(self.r, stats, kernel_bucket);
    }

    pub(crate) fn send_rts_or_issue(&mut self, sid: SendId, eager: bool) {
        self.cl.send_rts_or_issue(self.r, sid, eager);
    }

    pub(crate) fn try_issue(&mut self, sid: SendId) {
        self.cl.try_issue(self.r, sid);
    }

    pub(crate) fn finish_unpack(&mut self, rid: RecvId) {
        self.cl.finish_unpack(self.r, rid);
    }

    /// Schedule an event at `at` (clamped to the event loop's now), keyed
    /// by the path's rank so the tiebreak order is shard-invariant.
    pub(crate) fn schedule(&mut self, at: Time, ev: Event) {
        let key = self.cl.next_key(self.r);
        let t = at.max(self.cl.events.now());
        self.cl.events.push_at_key(t, key, ev);
    }
}

impl Cluster {
    /// Start packing for a send. Contiguous layouts short-circuit here
    /// (send in place over GPUDirect); everything else is the engine's.
    pub(crate) fn begin_pack(&mut self, r: usize, sid: SendId) {
        let (bytes, contiguous, user_buf) = {
            let s = &self.ranks[r].sends[sid.0];
            (
                s.packed_bytes,
                s.layout.is_contiguous_for(s.count),
                s.user_buf,
            )
        };
        if contiguous {
            self.charge(r, lookup_cost(), Bucket::Sync);
            let send = &mut self.ranks[r].sends[sid.0];
            send.staging = StagingLoc::UserGpu(fusedpack_gpu::DevPtr {
                addr: user_buf.addr,
                len: bytes,
            });
            send.lifecycle.apply(LifecycleEvent::PackFinished);
            let eager = self.ranks[r].sends[sid.0].eager;
            self.send_rts_or_issue(r, sid, eager);
            return;
        }
        let engine = self.engine.clone();
        engine.begin_pack(&mut PathCtx { cl: self, r }, sid);
    }

    /// Start unpacking for a receive whose payload just landed in staging.
    /// Contiguous payloads already landed in the user buffer.
    pub(crate) fn begin_unpack(&mut self, r: usize, rid: RecvId) {
        if matches!(self.ranks[r].recvs[rid.0].staging, StagingLoc::UserGpu(_)) {
            let rank = &mut self.ranks[r];
            rank.recvs[rid.0]
                .lifecycle
                .apply(LifecycleEvent::PackFinished);
            rank.recvs[rid.0].lifecycle.apply(LifecycleEvent::Completed);
            let now = rank.cpu;
            self.check_unblock(r, now);
            return;
        }
        let engine = self.engine.clone();
        engine.begin_unpack(&mut PathCtx { cl: self, r }, rid);
    }

    /// An asynchronous pack finished (GPU-Async event / naive DMA).
    pub(crate) fn on_pack_done(&mut self, r: usize, sid: SendId, t: Time) {
        let eff = self.eff_now(r, t);
        self.account_wait(r, eff);
        let engine = self.engine.clone();
        let detect = engine.completion_detect_cost(self, r);
        self.charge_at(r, eff, detect, Bucket::Sync);
        self.ranks[r].sends[sid.0]
            .lifecycle
            .apply(LifecycleEvent::PackFinished);
        let eager = self.ranks[r].sends[sid.0].eager;
        self.send_rts_or_issue(r, sid, eager);
    }

    /// An asynchronous unpack finished.
    pub(crate) fn on_unpack_done(&mut self, r: usize, rid: RecvId, t: Time) {
        let eff = self.eff_now(r, t);
        self.account_wait(r, eff);
        let engine = self.engine.clone();
        let detect = engine.completion_detect_cost(self, r);
        self.charge_at(r, eff, detect, Bucket::Sync);
        self.finish_unpack(r, rid);
    }

    /// A fused-kernel cooperative group signalled a request's completion.
    pub(crate) fn on_fusion_done(&mut self, r: usize, uid: Uid, t: Time) {
        let engine = self.engine.clone();
        engine.on_fusion_done(&mut PathCtx { cl: self, r }, uid, t);
    }

    /// [`Cluster::sync_kernel`] for callers outside this module (explicit
    /// `MPI_Pack`/`MPI_Unpack` execution).
    pub(crate) fn sync_kernel_public(&mut self, r: usize, stats: SegmentStats) {
        self.sync_kernel(r, stats, Bucket::Pack);
    }

    /// Synchronous kernel execution: launch, then block the CPU until the
    /// kernel completes (`cudaStreamSynchronize`) — the GPU-Sync pattern.
    fn sync_kernel(&mut self, r: usize, stats: SegmentStats, kernel_bucket: Bucket) {
        let at = self.ranks[r].cpu;
        let k = self.gpus[r].launch_kernel(at, StreamId(0), stats);
        let arch = &self.gpus[r].arch;
        let launch_cpu = arch.launch_cpu;
        let sync_call = arch.stream_sync_call;
        self.ranks[r].cpu = k.done + sync_call;
        self.bucket_add_at(r, Bucket::Launch, at, launch_cpu);
        self.bucket_add_at(r, kernel_bucket, k.start, k.done.since(k.start));
        // Blocked wait from the launch call's return to kernel completion,
        // plus the synchronize call itself.
        self.bucket_add_at(
            r,
            Bucket::Sync,
            k.cpu_release,
            k.done.since(k.cpu_release) + sync_call,
        );
        self.ranks[r]
            .tele
            .span(Lane::Host, k.cpu_release, k.done + sync_call, || {
                Payload::SyncWait {
                    kind: WaitKindTag::LocalKernel,
                }
            });
    }

    /// Mark a receive fully complete.
    fn finish_unpack(&mut self, r: usize, rid: RecvId) {
        // Non-fusion schemes apply the scatter here (fusion and DirectIPC
        // applied it at enqueue). DirectIPC receives never have staging.
        if self.ranks[r].recvs[rid.0].fusion_uid.is_none()
            && self.ranks[r].recvs[rid.0].ipc_send_id.is_none()
        {
            self.apply_unpack_movement(r, rid);
        }
        let rank = &mut self.ranks[r];
        rank.recvs[rid.0]
            .lifecycle
            .apply(LifecycleEvent::PackFinished);
        rank.recvs[rid.0].lifecycle.apply(LifecycleEvent::Completed);
        let ipc = rank.recvs[rid.0].ipc_send_id;
        let src = rank.recvs[rid.0].src;
        let now = rank.cpu;
        if let Some(send_id) = ipc {
            // Tell the sender its buffer is free (DirectIPC completion).
            self.send_ctrl(r, src, 0, WireKind::Fin { send_id });
        }
        self.check_unblock(r, now);
    }

    /// Send the RTS for a rendezvous message, or try the eager path.
    fn send_rts_or_issue(&mut self, r: usize, sid: SendId, eager: bool) {
        if eager || self.rndv == super::RndvProtocol::Rget {
            // Eager needs only the pack; RGET sends its RTS (with the
            // packed-buffer announcement) from try_issue once packing is
            // done — no early handshake to overlap.
            self.try_issue(r, sid);
            return;
        }
        if !self.ranks[r].sends[sid.0].lifecycle.rts_sent() {
            self.ranks[r].sends[sid.0]
                .lifecycle
                .apply(LifecycleEvent::RtsSent);
            let (dst, tag, bytes) = {
                let s = &self.ranks[r].sends[sid.0];
                (s.dst, s.tag, s.packed_bytes)
            };
            self.send_ctrl(
                r,
                dst,
                tag,
                WireKind::Rts {
                    send_id: sid,
                    packed_bytes: bytes,
                    ipc_origin: None,
                    rget: false,
                },
            );
        } else {
            self.try_issue(r, sid);
        }
    }
}
