//! Production-library naive path (SpectrumMPI / OpenMPI): one staged
//! `cudaMemcpyAsync` per contiguous block, through host memory.

use super::super::accounting::Bucket;
use super::{Cluster, Event, PathCtx, SchemeEngine};
use crate::lifecycle::LifecycleEvent;
use crate::scheme::NaiveFlavor;
use crate::sendrecv::{RecvId, SendId};
use fusedpack_datatype::cache::parse_cost;
use fusedpack_gpu::SegmentStats;
use fusedpack_sim::{Duration, Time};

pub(crate) struct NaiveEngine {
    pub(crate) flavor: NaiveFlavor,
}

/// Aggregate per-block staged copies (`cudaMemcpyAsync` each) — the
/// production-library path. Returns the completion instant of the DMA.
fn staged_copies(cx: &mut PathCtx<'_>, stats: SegmentStats, flavor: NaiveFlavor) -> Time {
    let r = cx.r;
    let arch = &cx.cl.gpus[r].arch;
    let call = Duration::from_nanos(
        (arch.memcpy_async_call.as_nanos() as f64 * flavor.call_cost_factor()) as u64,
    );
    let issue = call * stats.num_blocks;
    let dma = arch.dma_setup * stats.num_blocks
        + cx.cl.gpus[r].host_link().transfer_time(stats.total_bytes);
    let start = cx.cl.ranks[r].cpu;
    cx.cl.bucket_add(r, Bucket::Launch, issue);
    cx.cl.bucket_add(r, Bucket::Pack, dma);
    cx.cl.ranks[r].cpu = start + issue;
    start + issue.max(dma)
}

impl SchemeEngine for NaiveEngine {
    fn begin_pack(&self, cx: &mut PathCtx<'_>, sid: SendId) {
        let (bytes, blocks, _eager) = cx.send_meta(sid);
        let stats = SegmentStats::new(bytes, blocks);
        cx.charge(parse_cost(blocks), Bucket::Sync);
        let staging = cx.cl.alloc_send_staging(cx.r, bytes, true);
        cx.send_mut(sid).staging = staging;
        cx.cl.apply_pack_movement(cx.r, sid);
        let done = staged_copies(cx, stats, self.flavor);
        cx.send_mut(sid)
            .lifecycle
            .apply(LifecycleEvent::PackStarted);
        let rank_id = cx.cl.ranks[cx.r].id;
        cx.schedule(done, Event::PackDone(rank_id, sid));
    }

    fn begin_unpack(&self, cx: &mut PathCtx<'_>, rid: RecvId) {
        let (bytes, blocks) = cx.recv_meta(rid);
        let stats = SegmentStats::new(bytes, blocks);
        cx.charge(parse_cost(blocks), Bucket::Sync);
        let done = staged_copies(cx, stats, self.flavor);
        cx.recv_mut(rid)
            .lifecycle
            .apply(LifecycleEvent::PackStarted);
        let rank_id = cx.cl.ranks[cx.r].id;
        cx.schedule(done, Event::UnpackDone(rank_id, rid));
    }

    /// Both emulated libraries always bounce through host staging.
    fn host_recv_staging(&self, _cl: &Cluster, _r: usize, _bytes: u64, _blocks: u64) -> bool {
        true
    }
}
