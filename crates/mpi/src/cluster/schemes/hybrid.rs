//! CPU-GPU-Hybrid \[24\] and MVAPICH2-GDR: GDRCopy CPU load/store path for
//! dense/small layouts, cached-layout GPU kernels otherwise. The adaptive
//! (MVAPICH2-GDR) variant is the same engine with more conservative
//! hybrid limits.

use super::super::accounting::Bucket;
use super::{Cluster, PathCtx, SchemeEngine};
use crate::lifecycle::LifecycleEvent;
use crate::scheme::HybridPolicy;
use crate::sendrecv::{RecvId, SendId};
use fusedpack_datatype::cache::lookup_cost;
use fusedpack_gpu::SegmentStats;
use fusedpack_net::platform::Platform;

pub(crate) struct HybridEngine {
    policy: HybridPolicy,
}

impl HybridEngine {
    pub(crate) fn new(platform: &Platform, adaptive: bool) -> Self {
        HybridEngine {
            policy: HybridPolicy::for_link(&platform.host_link, adaptive),
        }
    }
}

impl SchemeEngine for HybridEngine {
    fn begin_pack(&self, cx: &mut PathCtx<'_>, sid: SendId) {
        let (bytes, blocks, eager) = cx.send_meta(sid);
        let stats = SegmentStats::new(bytes, blocks);
        cx.charge(lookup_cost(), Bucket::Sync);
        let cpu_path = self.policy.use_cpu_path(bytes, blocks) && cx.cl.gpus[cx.r].gdr.available;
        if cpu_path {
            let staging = cx.cl.alloc_send_staging(cx.r, bytes, true);
            cx.send_mut(sid).staging = staging;
            cx.cl.apply_pack_movement(cx.r, sid);
            let cost = cx.cl.gpus[cx.r].gdr.read_time(stats);
            cx.charge(cost, Bucket::Pack);
        } else {
            let staging = cx.cl.alloc_send_staging(cx.r, bytes, false);
            cx.send_mut(sid).staging = staging;
            cx.cl.apply_pack_movement(cx.r, sid);
            cx.sync_kernel(stats, Bucket::Pack);
        }
        cx.send_mut(sid)
            .lifecycle
            .apply(LifecycleEvent::PackFinished);
        cx.send_rts_or_issue(sid, eager);
    }

    fn begin_unpack(&self, cx: &mut PathCtx<'_>, rid: RecvId) {
        let (bytes, blocks) = cx.recv_meta(rid);
        let stats = SegmentStats::new(bytes, blocks);
        cx.charge(lookup_cost(), Bucket::Sync);
        if cx.cl.ranks[cx.r].recvs[rid.0].staging.is_host() {
            let cost = cx.cl.gpus[cx.r].gdr.write_time(stats);
            cx.charge(cost, Bucket::Pack);
        } else {
            cx.sync_kernel(stats, Bucket::Pack);
        }
        cx.finish_unpack(rid);
    }

    /// The receiver stages through host memory exactly when the CPU path
    /// will do the unpack (GDRCopy store loop).
    fn host_recv_staging(&self, cl: &Cluster, r: usize, bytes: u64, blocks: u64) -> bool {
        self.policy.use_cpu_path(bytes, blocks) && cl.gpus[r].gdr.available
    }
}
