//! GPU-Async \[23\]: pack/unpack kernels on a small pool of streams with
//! `cudaEventRecord`/`cudaEventQuery` completion detection. No layout
//! cache.

use super::super::accounting::Bucket;
use super::{Cluster, Event, PathCtx, SchemeEngine};
use crate::lifecycle::LifecycleEvent;
use crate::sendrecv::{PackState, RecvId, SendId};
use fusedpack_datatype::cache::parse_cost;
use fusedpack_gpu::{SegmentStats, StreamId};
use fusedpack_sim::{Duration, Time};

/// Number of streams the GPU-Async scheme \[23\] multiplexes kernels over.
const ASYNC_STREAMS: u32 = 4;

/// Per-operation task bookkeeping of the GPU-Async design \[23\]: callback
/// registration and completion-queue management, beyond the raw
/// `cudaEventRecord` (part of its "Scheduling" cost in Fig. 11).
const ASYNC_TASK_COST: Duration = Duration(1_500);

pub(crate) struct GpuAsyncEngine;

/// Round-robin stream selection.
fn async_stream(cx: &mut PathCtx<'_>) -> StreamId {
    let rank = &mut cx.cl.ranks[cx.r];
    let s = rank.next_stream % ASYNC_STREAMS;
    rank.next_stream = rank.next_stream.wrapping_add(1);
    StreamId(s)
}

/// Launch an async kernel on the next stream, charge its costs, and return
/// its completion instant.
fn launch_async_kernel(cx: &mut PathCtx<'_>, stats: SegmentStats) -> Time {
    let r = cx.r;
    let arch_event_record = cx.cl.gpus[r].arch.event_record;
    let stream = async_stream(cx);
    let at = cx.cl.ranks[r].cpu;
    let k = cx.cl.gpus[r].launch_kernel(at, stream, stats);
    let launch_cpu = cx.cl.gpus[r].arch.launch_cpu;
    cx.cl.ranks[r].cpu = k.cpu_release + arch_event_record;
    cx.cl.bucket_add_at(r, Bucket::Launch, at, launch_cpu);
    cx.cl
        .bucket_add_at(r, Bucket::Pack, k.start, k.done.since(k.start));
    cx.cl
        .bucket_add_at(r, Bucket::Scheduling, k.cpu_release, arch_event_record);
    k.done
}

impl SchemeEngine for GpuAsyncEngine {
    fn begin_pack(&self, cx: &mut PathCtx<'_>, sid: SendId) {
        let (bytes, blocks, eager) = cx.send_meta(sid);
        let stats = SegmentStats::new(bytes, blocks);
        cx.charge(parse_cost(blocks), Bucket::Sync);
        cx.charge(ASYNC_TASK_COST, Bucket::Scheduling);
        let staging = cx.cl.alloc_send_staging(cx.r, bytes, false);
        cx.send_mut(sid).staging = staging;
        cx.cl.apply_pack_movement(cx.r, sid);
        let done = launch_async_kernel(cx, stats);
        cx.send_mut(sid)
            .lifecycle
            .apply(LifecycleEvent::PackStarted);
        let rank_id = cx.cl.ranks[cx.r].id;
        cx.schedule(done, Event::PackDone(rank_id, sid));
        // RTS overlaps with the packing kernel.
        cx.send_rts_or_issue(sid, eager);
    }

    fn begin_unpack(&self, cx: &mut PathCtx<'_>, rid: RecvId) {
        let (bytes, blocks) = cx.recv_meta(rid);
        let stats = SegmentStats::new(bytes, blocks);
        cx.charge(parse_cost(blocks), Bucket::Sync);
        cx.charge(ASYNC_TASK_COST, Bucket::Scheduling);
        let done = launch_async_kernel(cx, stats);
        cx.recv_mut(rid)
            .lifecycle
            .apply(LifecycleEvent::PackStarted);
        let rank_id = cx.cl.ranks[cx.r].id;
        cx.schedule(done, Event::UnpackDone(rank_id, rid));
    }

    /// GPU-Async's progress engine scans *every* outstanding event per
    /// progress trip (`cudaEventQuery` each), so detection cost grows with
    /// the number of in-flight kernels — the extra synchronization penalty
    /// the paper blames for GPU-Async losing to GPU-Sync on Lassen
    /// (Fig. 10 discussion).
    fn completion_detect_cost(&self, cl: &Cluster, r: usize) -> Duration {
        let rank = &cl.ranks[r];
        let outstanding = rank
            .sends
            .iter()
            .filter(|s| !s.lifecycle.is_done() && s.lifecycle.pack() == PackState::InFlight)
            .count()
            + rank
                .recvs
                .iter()
                .filter(|op| op.lifecycle.pack() == PackState::InFlight)
                .count();
        // One query per stream-head event per progress trip.
        let scanned = outstanding.clamp(1, ASYNC_STREAMS as usize);
        cl.gpus[r].arch.event_query * (scanned as u64)
    }
}
