//! GPU-Sync \[8, 22\]: specialized pack/unpack kernel + blocking
//! `cudaStreamSynchronize` per message. No layout cache.

use super::super::accounting::Bucket;
use super::{PathCtx, SchemeEngine};
use crate::lifecycle::LifecycleEvent;
use crate::sendrecv::{RecvId, SendId};
use fusedpack_datatype::cache::parse_cost;
use fusedpack_gpu::SegmentStats;

pub(crate) struct GpuSyncEngine;

impl SchemeEngine for GpuSyncEngine {
    fn begin_pack(&self, cx: &mut PathCtx<'_>, sid: SendId) {
        let (bytes, blocks, eager) = cx.send_meta(sid);
        let stats = SegmentStats::new(bytes, blocks);
        cx.charge(parse_cost(blocks), Bucket::Sync);
        let staging = cx.cl.alloc_send_staging(cx.r, bytes, false);
        cx.send_mut(sid).staging = staging;
        cx.cl.apply_pack_movement(cx.r, sid);
        cx.sync_kernel(stats, Bucket::Pack);
        cx.send_mut(sid)
            .lifecycle
            .apply(LifecycleEvent::PackFinished);
        cx.send_rts_or_issue(sid, eager);
    }

    fn begin_unpack(&self, cx: &mut PathCtx<'_>, rid: RecvId) {
        let (bytes, blocks) = cx.recv_meta(rid);
        let stats = SegmentStats::new(bytes, blocks);
        cx.charge(parse_cost(blocks), Bucket::Sync);
        cx.sync_kernel(stats, Bucket::Pack);
        cx.finish_unpack(rid);
    }
}
