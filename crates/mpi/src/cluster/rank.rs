//! Per-rank runtime state.

use crate::breakdown::Breakdown;
use crate::cluster::RankId;
use crate::lifecycle::{RequeueLadder, Stage};
use crate::message::WireMsg;
use crate::program::Program;
use crate::sendrecv::{PackState, RecvOp, SendOp};
use fusedpack_core::{Scheduler, Uid};
use fusedpack_datatype::{LayoutCache, TypeHandle};
use fusedpack_gpu::DevPtr;
use fusedpack_sim::{Duration, Time};
use fusedpack_telemetry::{SpanId, Telemetry};
use std::collections::HashMap;

/// Which operation a fusion UID belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpRef {
    Send(usize),
    Recv(usize),
}

/// An operation parked by the ring-exhaustion backpressure ladder, waiting
/// for a retirement to free a slot before it re-enqueues (FIFO per rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RequeuedOp {
    /// Send index awaiting a pack slot.
    Pack(usize),
    /// Recv index awaiting an unpack slot.
    Unpack(usize),
    /// Recv index awaiting a DirectIPC slot (origin: sender's device
    /// address advertised in the RTS).
    DirectIpc { rid: usize, origin: u64 },
}

/// What a blocked rank is waiting on (for the Fig. 11 `Comm.` bucket).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WaitKind {
    /// A local kernel/DMA is still running — its time is already accounted
    /// in the `pack` bucket.
    LocalKernel,
    /// Pure network wait: observed communication time.
    Network,
}

/// One rank's full runtime state: its program cursor, virtual CPU clock,
/// MPI request lists, matching queues, scheme state, and accounting.
pub(crate) struct RankState {
    pub id: RankId,
    pub node: u32,
    pub program: Program,
    pub pc: usize,
    /// The host thread's clock: when the CPU next becomes free. Every MPI
    /// call, kernel launch, and scheduler action advances it — one thread
    /// runs application, progress engine, and scheduler, the deployment
    /// the paper evaluates (§IV-A2).
    pub cpu: Time,
    pub blocked: bool,
    pub done: bool,
    /// Buffer id → device pointer in the rank's user pool.
    pub bufs: Vec<DevPtr>,
    /// Type slot → committed cache handle. Each message resolves its
    /// compiled layout through [`LayoutCache::acquire`] (cost-free, counts
    /// a cache hit) and pins the `Arc` in its request for its lifetime, so
    /// the LRU can never evict a layout still in flight.
    pub types: Vec<TypeHandle>,
    pub ddt_cache: LayoutCache,
    pub sends: Vec<SendOp>,
    pub recvs: Vec<RecvOp>,
    /// Unexpected-message queue (RTS/eager that arrived before the recv).
    pub unexpected: Vec<WireMsg>,
    /// Fusion UID → owning operation.
    pub uid_map: HashMap<Uid, OpRef>,
    /// Operations refused by a full request ring, re-enqueued in FIFO order
    /// as retirements free slots (the backpressure ladder).
    pub fusion_requeue: RequeueLadder<RequeuedOp>,
    /// Fusion scheduler — installed by the engine's `make_scheduler` hook,
    /// so it exists exactly for the fusion schemes (`Fusion` and
    /// `FusionAdaptive`) and is `None` for every other design.
    pub sched: Option<Scheduler>,
    /// Round-robin stream cursor for the GPU-Async scheme.
    pub next_stream: u32,
    /// Completion horizon of application-launched kernels (Algorithm 2's
    /// `DeviceSync` waits for this).
    pub app_kernels_done: Time,
    pub breakdown: Breakdown,
    pub laps: Vec<Duration>,
    pub lap_start: Time,
    /// Breakdown snapshot at the last `ResetTimer` (for per-lap deltas).
    pub breakdown_at_reset: Breakdown,
    /// Per-lap breakdown deltas, aligned with `laps`.
    pub lap_breakdowns: Vec<Breakdown>,
    /// Anchor for attributing blocked-wait intervals.
    pub wait_anchor: Time,
    /// Telemetry handle tagged with this rank.
    pub tele: Telemetry,
    /// Open `SyncWait` span while blocked in Waitall.
    pub wait_span: Option<SpanId>,
    /// Next canonical event-key counter for events this rank originates.
    /// Keys are `(rank << 42) | counter`, giving every cluster event a
    /// globally unique, mode-independent tiebreaker (see
    /// [`super::Cluster::next_key`]).
    pub key_counter: u64,
}

impl RankState {
    pub fn new(id: RankId, node: u32, program: Program) -> Self {
        RankState {
            id,
            node,
            program,
            pc: 0,
            cpu: Time::ZERO,
            blocked: false,
            done: false,
            bufs: Vec::new(),
            types: Vec::new(),
            ddt_cache: LayoutCache::new(),
            sends: Vec::new(),
            recvs: Vec::new(),
            unexpected: Vec::new(),
            uid_map: HashMap::new(),
            fusion_requeue: RequeueLadder::new(),
            sched: None,
            next_stream: 0,
            app_kernels_done: Time::ZERO,
            breakdown: Breakdown::default(),
            laps: Vec::new(),
            lap_start: Time::ZERO,
            breakdown_at_reset: Breakdown::default(),
            lap_breakdowns: Vec::new(),
            wait_anchor: Time::ZERO,
            tele: Telemetry::disabled(),
            wait_span: None,
            key_counter: 0,
        }
    }

    /// Are all outstanding requests finished (Waitall condition)?
    pub fn all_requests_complete(&self) -> bool {
        self.sends.iter().all(|s| s.lifecycle.is_done())
            && self.recvs.iter().all(|r| r.is_complete())
    }

    /// Classify what a blocked rank is waiting on *right now*.
    pub fn classify_wait(&self) -> WaitKind {
        let kernel_in_flight = self
            .sends
            .iter()
            .any(|s| !s.lifecycle.is_done() && s.lifecycle.pack() == PackState::InFlight)
            || self.recvs.iter().any(|r| {
                r.lifecycle.stage() == Stage::Active && r.lifecycle.pack() == PackState::InFlight
            });
        if kernel_in_flight {
            WaitKind::LocalKernel
        } else {
            WaitKind::Network
        }
    }

    /// Take the blocked interval since the last anchor (classified at the
    /// current instant), then move the anchor to `up_to`. The caller
    /// ([`super::Cluster::account_wait`]) charges the breakdown bucket so
    /// the charge also lands in telemetry.
    pub fn take_wait(&mut self, up_to: Time) -> Option<(WaitKind, Duration)> {
        let taken = if self.blocked && up_to > self.wait_anchor {
            Some((self.classify_wait(), up_to.since(self.wait_anchor)))
        } else {
            None
        };
        self.wait_anchor = self.wait_anchor.max(up_to);
        taken
    }

    /// Are any receives still waiting for their payload to arrive? (Used by
    /// the fusion scheduler's receiver-side linger policy.)
    pub fn recvs_awaiting_data(&self) -> bool {
        self.recvs.iter().any(|r| r.lifecycle.pre_data())
    }
}
