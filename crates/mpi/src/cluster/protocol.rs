//! Wire protocols: eager, rendezvous RPUT handshake, tag matching, and
//! payload delivery.

use super::schemes::PathCtx;
use super::{Cluster, Event, RankId, RndvProtocol};
use crate::lifecycle::LifecycleEvent;
use crate::message::{WireKind, WireMsg};
use crate::sendrecv::{CtsInfo, PackState, RecvId, SendId, StagingLoc};
use fusedpack_gpu::MemPool;
use fusedpack_net::rdma::CTRL_BYTES;
use fusedpack_sim::{FaultSite, Time};
use fusedpack_telemetry::{Lane, Payload, RndvPhaseTag};

impl Cluster {
    /// Transport `bytes` from rank `src` to rank `dst`. Returns
    /// `(delivered, initiator_completion)`. `gdr` caps inter-node bandwidth
    /// by the NIC↔GPU path; intra-node transfers ride the GPU↔GPU link.
    /// `event_key` is the transfer's canonical event key — the coordinate
    /// an armed fabric fault domain keys its per-hop draws by.
    pub(crate) fn transport(
        &mut self,
        src: usize,
        dst: usize,
        at: Time,
        bytes: u64,
        gdr: bool,
        event_key: u64,
    ) -> (Time, Time) {
        if self.topo.is_some() {
            if let Some(result) = self.transport_routed(src, dst, at, bytes, gdr, event_key) {
                return result;
            }
            // Route resolution failed (absorbed, counted) or the fabric is
            // disconnected (forced-delivery rung): fall through to the flat
            // path so the transfer still completes and Waitall never wedges.
        }
        self.transport_flat(src, dst, at, bytes, gdr)
    }

    /// The flat (non-routed) wire model. Node lookups go through the
    /// endpoint table — valid for *any* global rank, local or not, which
    /// sharded runs rely on.
    pub(crate) fn transport_flat(
        &mut self,
        src: usize,
        dst: usize,
        at: Time,
        bytes: u64,
        gdr: bool,
    ) -> (Time, Time) {
        let (src_node, dst_node) = (self.endpoints[src].node, self.endpoints[dst].node);
        if src_node == dst_node {
            let link = self.intra_link(src_node, dst_node);
            let (start, delivered) = link.transmit(at, bytes);
            // Intra-node transfers bypass the NIC, so the wire span is
            // emitted here (the NIC emits its own for inter-node sends).
            self.ranks[src]
                .tele
                .span(Lane::Nic, start, delivered, || Payload::WireTransfer {
                    bytes,
                });
            (delivered, delivered)
        } else {
            let nic = &mut self.nics[src_node as usize];
            let (_, delivered) = if gdr {
                nic.post_send_gdr(at, bytes)
            } else {
                nic.post_send(at, bytes)
            };
            // Initiator completion (CQE/ACK) one wire latency later.
            (delivered, delivered + nic.wire().latency)
        }
    }

    /// The single chokepoint for asynchronous wire traffic: transport the
    /// payload and schedule the arrival (and, when `complete` is set, the
    /// initiator-side CQE). The canonical keys for both events are drawn
    /// from the sender *before* any timing is computed, so the per-rank
    /// draw order is identical whether the transmit executes now
    /// (single-queue and flat-sharded runs) or is recorded as a
    /// [`super::PendingTransmit`] for the coordinator to apply at the
    /// window barrier (topology-sharded runs). Returns the
    /// `(delivered, completion)` times, or `None` when deferred.
    pub(crate) fn wire_transmit(
        &mut self,
        src: usize,
        at: Time,
        bytes: u64,
        gdr: bool,
        msg: WireMsg,
        complete: Option<SendId>,
    ) -> Option<(Time, Time)> {
        let deliver_key = self.next_key(src);
        let complete_key = complete.map(|sid| (sid, self.next_key(src)));
        if self.defer_transmits {
            let (t_e, k_e) = self.cur_event;
            let seq = self.pending_seq;
            self.pending_seq += 1;
            self.pending.push(super::PendingTransmit {
                t_e,
                k_e,
                seq,
                src,
                at,
                bytes,
                gdr,
                msg,
                deliver_key,
                complete: complete_key,
                dup: None,
            });
            return None;
        }
        let dst = msg.dst.0 as usize;
        let (delivered, completion) =
            self.transport_reliable(src, dst, at, bytes, gdr, deliver_key);
        self.push_deliver(delivered.max(self.events.now()), deliver_key, msg);
        if let Some((sid, key)) = complete_key {
            let rid = self.ranks[src].id;
            self.events.push_at_key(
                completion.max(self.events.now()),
                key,
                Event::SendComplete(rid, sid),
            );
        }
        Some((delivered, completion))
    }

    /// [`Cluster::transport`] behind the retry protocol.
    ///
    /// Under an armed fault plan the wire may drop, corrupt, or delay the
    /// payload, and the NIC may stall its completion. Every lost attempt
    /// occupies the wire for its full serialization time
    /// ([`fusedpack_net::Link::transmit_wasted`]); the sender detects the
    /// loss — retransmission timeout for a drop, receiver NACK one RTT
    /// after delivery for a corruption — backs off with deterministic
    /// jitter, and retransmits. The policy's attempt and deadline budgets
    /// bound the loop; once exhausted the transfer is forced through the
    /// reliable slow path (counted as `deadline_exceeded`), so a Waitall
    /// can never wedge on an unlucky seed.
    ///
    /// `event_key` is the transfer's pre-drawn Deliver key: unique per
    /// transfer and identical across shard counts, it keys both the backoff
    /// jitter and the fabric's per-hop draws, which is what lets the
    /// sharded loop replay deferred transmits at window barriers and still
    /// produce byte-identical chaos reports.
    pub(crate) fn transport_reliable(
        &mut self,
        src: usize,
        dst: usize,
        at: Time,
        bytes: u64,
        gdr: bool,
        event_key: u64,
    ) -> (Time, Time) {
        if self.faults.is_none() {
            return self.transport(src, dst, at, bytes, gdr, event_key);
        }
        let policy = self.retry;
        let jitter_seed = self.faults.as_ref().map_or(0, |p| p.seed());
        let deadline = at + policy.deadline;
        let mut now = at;
        let mut attempt: u32 = 1;
        loop {
            let site = if self.fault_fires(src, FaultSite::LinkDrop, now) {
                Some(FaultSite::LinkDrop)
            } else if self.fault_fires(src, FaultSite::LinkCorrupt, now) {
                Some(FaultSite::LinkCorrupt)
            } else {
                None
            };
            if let Some(site) = site {
                if attempt >= policy.max_attempts || now >= deadline {
                    // Budget exhausted: escalate to the reliable slow path —
                    // the payload still goes through below, but the failure
                    // is reported instead of retried.
                    self.fault_stats.deadline_exceeded += 1;
                } else {
                    let (wire_clear, rtt) = self.transport_wasted(src, dst, now, bytes, gdr);
                    let detected = if site == FaultSite::LinkCorrupt {
                        // Fully delivered, checksum-rejected, NACKed.
                        wire_clear + rtt
                    } else {
                        wire_clear + policy.detect_timeout
                    };
                    let backoff = policy.backoff_keyed(attempt, jitter_seed, event_key);
                    self.fault_retry(src, site, attempt, backoff, detected);
                    now = detected + backoff;
                    attempt += 1;
                    continue;
                }
            }
            let (mut delivered, mut completion) =
                self.transport(src, dst, now, bytes, gdr, event_key);
            if self.fault_fires(src, FaultSite::LinkDelay, now) {
                let spike = self.fault_spike(src, FaultSite::LinkDelay);
                self.fault_recovered(spike);
                delivered += spike;
                completion += spike;
            }
            let inter = self.endpoints[src].node != self.endpoints[dst].node;
            if inter && self.fault_fires(src, FaultSite::NicTimeout, now) {
                // CQE stalls: delivery is unaffected, the initiator's
                // completion arrives late.
                let spike = self.fault_spike(src, FaultSite::NicTimeout);
                self.fault_recovered(spike);
                completion += spike;
            }
            if attempt > 1 {
                self.fault_stats.added_latency += now.since(at);
            }
            return (delivered, completion);
        }
    }

    /// Occupy the wire (or every hop of the route) with a payload that is
    /// dropped mid-flight. Returns `(wire_clear, rtt)` — the inputs to the
    /// retry protocol's loss-detection timing.
    fn transport_wasted(
        &mut self,
        src: usize,
        dst: usize,
        now: Time,
        bytes: u64,
        gdr: bool,
    ) -> (Time, fusedpack_sim::Duration) {
        if self.topo.is_some() {
            if let Some(result) = self.transport_routed_wasted(src, dst, now, bytes, gdr) {
                return result;
            }
        }
        let (src_node, dst_node) = (self.endpoints[src].node, self.endpoints[dst].node);
        if src_node == dst_node {
            let link = self.intra_link(src_node, dst_node);
            let (start, clear) = link.transmit_wasted(now, bytes, None);
            let rtt = link.spec().rtt();
            self.ranks[src]
                .tele
                .span(Lane::Nic, start, clear, || Payload::WireTransfer { bytes });
            (clear, rtt)
        } else {
            let nic = &mut self.nics[src_node as usize];
            let (_, clear) = nic.post_send_wasted(now, bytes, gdr);
            (clear, nic.wire().rtt())
        }
    }

    /// Send a control packet (RTS/CTS); fire-and-forget.
    pub(crate) fn send_ctrl(&mut self, src: usize, dst: RankId, tag: u32, kind: WireKind) {
        let at = self.ranks[src].cpu;
        let phase = match &kind {
            WireKind::Rts { .. } => Some(RndvPhaseTag::Rts),
            WireKind::Cts { .. } => Some(RndvPhaseTag::Cts),
            WireKind::RdmaReadReq { .. } => Some(RndvPhaseTag::ReadReq),
            WireKind::Fin { .. } => Some(RndvPhaseTag::Fin),
            WireKind::Eager { .. } | WireKind::RdmaData { .. } => None,
        };
        if let Some(phase) = phase {
            self.ranks[src]
                .tele
                .instant(Lane::Host, at, || Payload::Rndv {
                    peer: dst.0,
                    tag,
                    phase,
                    bytes: CTRL_BYTES,
                });
        }
        let msg = WireMsg {
            src: self.ranks[src].id,
            dst,
            tag,
            kind,
            payload: Vec::new(),
        };
        self.wire_transmit(src, at, CTRL_BYTES, false, msg, None);
    }

    /// Read the packed payload bytes behind a staging location into a
    /// pooled buffer (recycled back into `buf_pool` once the payload is
    /// deposited at the receiver).
    pub(crate) fn read_staging(&self, r: usize, loc: StagingLoc) -> Vec<u8> {
        let src: &[u8] = match loc {
            StagingLoc::Gpu(p) => self.staging_mems[r].read(p),
            StagingLoc::Host(p) => self.host_mems[r].read(p),
            StagingLoc::UserGpu(p) => self.gpus[r].mem.read(p),
            StagingLoc::None => &[],
        };
        if src.is_empty() {
            return Vec::new(); // model-only mode / ctrl messages
        }
        let mut buf = self.buf_pool.take(src.len());
        buf.extend_from_slice(src);
        buf
    }

    /// Put a send's payload on the wire as soon as both its pack and its
    /// protocol prerequisites are met.
    pub(crate) fn try_issue(&mut self, r: usize, sid: SendId) {
        let rget = self.rndv == RndvProtocol::Rget;
        let (dst, tag, bytes, eager, staging, cts) = {
            let s = &self.ranks[r].sends[sid.0];
            let ready = if rget && !s.eager {
                // RGET needs only the pack; there is no CTS.
                s.lifecycle.is_unmatched() && s.lifecycle.pack() == PackState::Done
            } else {
                s.ready_to_issue()
            };
            if !ready {
                return;
            }
            (s.dst, s.tag, s.packed_bytes, s.eager, s.staging, s.cts)
        };
        self.ranks[r].sends[sid.0]
            .lifecycle
            .apply(LifecycleEvent::Issued);
        let payload = self.read_staging(r, staging);
        let gdr_src = matches!(staging, StagingLoc::Gpu(_) | StagingLoc::UserGpu(_));
        let at = self.ranks[r].cpu;
        let src_id = self.ranks[r].id;

        if !eager && self.rndv == RndvProtocol::Rget {
            // RGET: announce the packed buffer; the receiver pulls it.
            let send = &mut self.ranks[r].sends[sid.0];
            if !send.lifecycle.rts_sent() {
                send.lifecycle.apply(LifecycleEvent::RtsSent);
                let tag = send.tag;
                self.send_ctrl(
                    r,
                    dst,
                    tag,
                    WireKind::Rts {
                        send_id: sid,
                        packed_bytes: bytes,
                        ipc_origin: None,
                        rget: true,
                    },
                );
            }
            // Local completion arrives as a Fin once the read drains.
            return;
        }
        if eager {
            self.ranks[r]
                .tele
                .instant(Lane::Host, at, || Payload::EagerSend {
                    peer: dst.0,
                    tag,
                    bytes,
                });
            let msg = WireMsg {
                src: src_id,
                dst,
                tag,
                kind: WireKind::Eager {
                    send_id: sid,
                    packed_bytes: bytes,
                },
                payload,
            };
            self.wire_transmit(r, at, bytes + CTRL_BYTES, gdr_src, msg, None);
            // Eager sends complete locally once injected.
            self.ranks[r].sends[sid.0]
                .lifecycle
                .apply(LifecycleEvent::Completed);
            let now = self.ranks[r].cpu;
            self.check_unblock(r, now);
        } else {
            // `ready_to_issue` implies a CTS arrived; a fault-replayed
            // control message could get us here without one, in which case
            // the issue simply waits for the real CTS.
            let Some(cts) = cts else {
                debug_assert!(false, "rendezvous issue without CTS");
                self.fault_stats.spurious += 1;
                self.ranks[r].sends[sid.0]
                    .lifecycle
                    .apply(LifecycleEvent::IssueRetracted);
                self.buf_pool.put(payload);
                return;
            };
            let gdr = gdr_src || !cts.host_staging;
            self.ranks[r]
                .tele
                .instant(Lane::Host, at, || Payload::Rndv {
                    peer: dst.0,
                    tag,
                    phase: RndvPhaseTag::Data,
                    bytes,
                });
            let msg = WireMsg {
                src: src_id,
                dst,
                tag: 0,
                kind: WireKind::RdmaData {
                    send_id: sid,
                    recv_id: cts.recv_id,
                },
                payload,
            };
            let result = self.wire_transmit(r, at, bytes, gdr, msg, Some(sid));
            // The dup-CQE decision (and its event key) is drawn in program
            // order whether the transmit executed inline or was deferred to
            // a window barrier, so the rank's per-site stream and key
            // sequence stay aligned across shard counts. The NIC replays
            // the CQE; the progress engine's guard in `on_send_complete`
            // absorbs the duplicate.
            let dup = self
                .fault_fires(r, FaultSite::NicDupCompletion, at)
                .then(|| self.next_key(r));
            match (result, dup) {
                (Some((_, completion)), Some(key)) => {
                    let dup_at = completion + self.platform.progress_poll;
                    self.events.push_at_key(
                        dup_at.max(self.events.now()),
                        key,
                        Event::SendComplete(src_id, sid),
                    );
                }
                (None, Some(key)) => {
                    // Deferred: carry the pre-drawn key in the pending
                    // record; the coordinator schedules the duplicate once
                    // the real completion time is known.
                    self.pending
                        .last_mut()
                        .expect("deferred transmit just pushed")
                        .dup = Some(key);
                }
                _ => {}
            }
        }
    }

    /// A message arrived at its destination NIC.
    pub(crate) fn on_deliver(&mut self, msg: WireMsg, t: Time) {
        let r = msg.dst.0 as usize;
        let eff = self.eff_now(r, t);
        self.account_wait(r, eff);
        self.ranks[r].cpu = eff + self.platform.progress_poll;
        {
            let (peer, tag, bytes) = (msg.src.0, msg.tag, msg.payload.len() as u64);
            self.ranks[r]
                .tele
                .instant(Lane::Host, t, || Payload::Deliver { peer, tag, bytes });
        }

        match msg.kind {
            WireKind::Rts { .. } | WireKind::Eager { .. } => {
                let matched = self.ranks[r].recvs.iter().position(|op| {
                    op.lifecycle.is_unmatched() && op.src == msg.src && op.tag == msg.tag
                });
                match matched {
                    Some(idx) => {
                        let rid = RecvId(idx);
                        let now = self.ranks[r].cpu;
                        self.match_message(r, rid, msg, now);
                    }
                    None => self.ranks[r].unexpected.push(msg),
                }
            }
            WireKind::Cts {
                send_id,
                recv_id,
                staging_addr,
                host_staging,
            } => {
                // Guard: a replayed CTS for a send that is already issuing
                // (or for an epoch that ended) is dropped, not re-armed.
                let Some(send) = self.ranks[r].sends.get_mut(send_id.0) else {
                    self.fault_stats.spurious += 1;
                    return;
                };
                if send.cts.is_some() || send.lifecycle.is_done() {
                    self.fault_stats.spurious += 1;
                    return;
                }
                send.cts = Some(CtsInfo {
                    recv_id,
                    staging_addr,
                    host_staging,
                });
                self.try_issue(r, send_id);
            }
            WireKind::RdmaData { send_id, recv_id } => {
                // Guard: only a receive still awaiting its payload may
                // consume one; duplicates and stale deliveries recycle the
                // buffer and are counted.
                let live = self.ranks[r]
                    .recvs
                    .get(recv_id.0)
                    .is_some_and(|op| op.lifecycle.awaiting_data());
                if !live {
                    self.fault_stats.spurious += 1;
                    self.buf_pool.put(msg.payload);
                    return;
                }
                self.deposit_payload(r, recv_id, &msg.payload);
                self.buf_pool.put(msg.payload);
                self.ranks[r].recvs[recv_id.0]
                    .lifecycle
                    .apply(LifecycleEvent::DataArrived);
                if self.rndv == RndvProtocol::Rget {
                    // The sender's buffer has been drained by our read.
                    self.send_ctrl(r, msg.src, 0, WireKind::Fin { send_id });
                }
                self.begin_unpack(r, recv_id);
            }
            WireKind::RdmaReadReq { send_id, recv_id } => {
                // Served by the sender's NIC hardware: no CPU time charged
                // beyond the poll above; the payload flows back over this
                // node's wire.
                let Some(send) = self.ranks[r].sends.get(send_id.0) else {
                    self.fault_stats.spurious += 1;
                    return;
                };
                let (staging, bytes, dst) = (send.staging, send.packed_bytes, msg.src);
                let payload = self.read_staging(r, staging);
                let gdr = matches!(staging, StagingLoc::Gpu(_) | StagingLoc::UserGpu(_));
                let at = self.events.now();
                let src_id = self.ranks[r].id;
                let msg = WireMsg {
                    src: src_id,
                    dst,
                    tag: 0,
                    kind: WireKind::RdmaData { send_id, recv_id },
                    payload,
                };
                self.wire_transmit(r, at, bytes, gdr, msg, None);
            }
            WireKind::Fin { send_id } => {
                // Guard: a duplicated Fin (or one outliving its epoch) is
                // absorbed.
                match self.ranks[r].sends.get_mut(send_id.0) {
                    Some(s) if !s.lifecycle.is_done() => {
                        s.lifecycle.apply(LifecycleEvent::Completed);
                        let now = self.ranks[r].cpu;
                        self.check_unblock(r, now);
                    }
                    _ => self.fault_stats.spurious += 1,
                }
            }
        }
    }

    /// A matchable message met its posted receive.
    pub(crate) fn match_message(&mut self, r: usize, rid: RecvId, msg: WireMsg, now: Time) {
        self.ranks[r].cpu = self.ranks[r].cpu.max(now) + self.platform.mpi_call;
        match msg.kind {
            WireKind::Rts {
                send_id,
                ipc_origin: Some(origin),
                ..
            } => {
                // DirectIPC: no staging, no CTS, no wire payload — the
                // engine fuses a zero-copy load of the sender's buffer (or
                // degrades to a staged bounce if the handle won't map).
                let src = msg.src.0 as usize;
                self.ranks[r].recvs[rid.0]
                    .lifecycle
                    .apply(LifecycleEvent::DataArrived);
                self.ranks[r].recvs[rid.0].ipc_send_id = Some(send_id);
                let engine = self.engine.clone();
                engine.on_ipc_rts(&mut PathCtx { cl: self, r }, rid, src, origin);
            }
            WireKind::Rts { send_id, rget, .. } => {
                let (bytes, blocks) = {
                    let op = &self.ranks[r].recvs[rid.0];
                    (op.packed_bytes, op.blocks)
                };
                let staging = self.recv_staging_for(r, rid, bytes, blocks);
                let op = &mut self.ranks[r].recvs[rid.0];
                op.staging = staging;
                op.lifecycle.apply(LifecycleEvent::Matched);
                let src = msg.src;
                if rget {
                    // Pull the announced data with an RDMA READ.
                    self.send_ctrl(
                        r,
                        src,
                        0,
                        WireKind::RdmaReadReq {
                            send_id,
                            recv_id: rid,
                        },
                    );
                } else {
                    self.send_ctrl(
                        r,
                        src,
                        0,
                        WireKind::Cts {
                            send_id,
                            recv_id: rid,
                            staging_addr: staging.addr(),
                            host_staging: staging.is_host(),
                        },
                    );
                }
            }
            WireKind::Eager { .. } => {
                let (bytes, blocks) = {
                    let op = &self.ranks[r].recvs[rid.0];
                    (op.packed_bytes, op.blocks)
                };
                let staging = self.recv_staging_for(r, rid, bytes, blocks);
                self.ranks[r].recvs[rid.0].staging = staging;
                self.deposit_payload(r, rid, &msg.payload);
                self.buf_pool.put(msg.payload);
                self.ranks[r].recvs[rid.0]
                    .lifecycle
                    .apply(LifecycleEvent::DataArrived);
                self.begin_unpack(r, rid);
            }
            _ => unreachable!("only matchable kinds reach match_message"),
        }
    }

    /// Receive staging for one operation: contiguous layouts land straight
    /// in the user buffer (no unpack), everything else gets a staging
    /// buffer per the scheme's policy.
    fn recv_staging_for(&mut self, r: usize, rid: RecvId, bytes: u64, blocks: u64) -> StagingLoc {
        let op = &self.ranks[r].recvs[rid.0];
        if op.layout.is_contiguous_for(op.count) {
            return StagingLoc::UserGpu(fusedpack_gpu::DevPtr {
                addr: op.user_buf.addr,
                len: bytes,
            });
        }
        self.alloc_recv_staging(r, bytes, blocks)
    }

    /// Choose where the receiver stages the packed payload.
    fn alloc_recv_staging(&mut self, r: usize, bytes: u64, blocks: u64) -> StagingLoc {
        let engine = self.engine.clone();
        let host = engine.host_recv_staging(self, r, bytes, blocks);
        if host {
            StagingLoc::Host(self.host_mems[r].alloc(bytes.max(1), 64))
        } else {
            StagingLoc::Gpu(self.staging_mems[r].alloc(bytes.max(1), 64))
        }
    }

    /// Write an arrived payload into the receive staging buffer. A payload
    /// with no staging to land in (a spurious delivery replayed by a fault)
    /// is dropped and counted, not fatal.
    fn deposit_payload(&mut self, r: usize, rid: RecvId, payload: &[u8]) {
        if payload.is_empty() {
            return; // model-only mode
        }
        let op = &self.ranks[r].recvs[rid.0];
        match op.staging {
            StagingLoc::Gpu(p) => self.staging_mems[r].write(p, payload),
            StagingLoc::Host(p) => self.host_mems[r].write(p, payload),
            StagingLoc::UserGpu(p) => self.gpus[r].mem.write(p, payload),
            StagingLoc::None => self.fault_stats.spurious += 1,
        }
    }

    /// RDMA initiator completion: the send is done.
    pub(crate) fn on_send_complete(&mut self, r: usize, sid: SendId, t: Time) {
        let eff = self.eff_now(r, t);
        self.account_wait(r, eff);
        self.ranks[r].cpu = eff + self.platform.progress_poll;
        // Guard: a duplicated CQE — possibly landing after Waitall already
        // freed the epoch's requests — is absorbed, not double-applied.
        match self.ranks[r].sends.get_mut(sid.0) {
            Some(s) if !s.lifecycle.is_done() => s.lifecycle.apply(LifecycleEvent::Completed),
            _ => {
                self.fault_stats.spurious += 1;
                return;
            }
        }
        let now = self.ranks[r].cpu;
        self.check_unblock(r, now);
    }

    /// Allocate a sender-side staging buffer.
    pub(crate) fn alloc_send_staging(&mut self, r: usize, bytes: u64, host: bool) -> StagingLoc {
        if host {
            StagingLoc::Host(self.host_mems[r].alloc(bytes.max(1), 64))
        } else {
            StagingLoc::Gpu(self.staging_mems[r].alloc(bytes.max(1), 64))
        }
    }

    /// Apply a pack's data movement: gather the user buffer's segments into
    /// the staging buffer. The gather plan streams straight off the layout
    /// (`abs_segments`), never materialising a segment `Vec`.
    pub(crate) fn apply_pack_movement(&mut self, r: usize, sid: SendId) {
        let (layout, base, count, staging) = {
            let s = &self.ranks[r].sends[sid.0];
            (s.layout.clone(), s.user_buf.addr, s.count, s.staging)
        };
        let (dst, dst_off) = match staging {
            StagingLoc::Gpu(p) => (&mut self.staging_mems[r], p.addr),
            StagingLoc::Host(p) => (&mut self.host_mems[r], p.addr),
            StagingLoc::UserGpu(_) => return, // contiguous: nothing to move
            StagingLoc::None => {
                // Unreachable by construction (begin_pack assigns staging
                // before any movement); under fault injection a stale
                // event is absorbed rather than aborting the exchange.
                debug_assert!(false, "pack movement without staging");
                self.fault_stats.spurious += 1;
                return;
            }
        };
        match super::copy_tier_for(&layout, base, count) {
            super::CopyTier::Contiguous { bytes } => {
                MemPool::copy_between(&self.gpus[r].mem, base, dst, dst_off, bytes);
            }
            super::CopyTier::Runs(plan) => {
                MemPool::gather_between_uniform(&self.gpus[r].mem, plan, dst, dst_off);
            }
            super::CopyTier::Generic => {
                MemPool::gather_between_iter(
                    &self.gpus[r].mem,
                    layout.abs_segments(base, count),
                    dst,
                    dst_off,
                );
            }
        }
    }

    /// Apply an unpack's data movement: scatter staging into the user
    /// buffer.
    pub(crate) fn apply_unpack_movement(&mut self, r: usize, rid: RecvId) {
        let (layout, base, count, staging) = {
            let op = &self.ranks[r].recvs[rid.0];
            (op.layout.clone(), op.user_buf.addr, op.count, op.staging)
        };
        let (src, src_off) = match staging {
            StagingLoc::Gpu(p) => (&self.staging_mems[r], p.addr),
            StagingLoc::Host(p) => (&self.host_mems[r], p.addr),
            StagingLoc::UserGpu(_) => return, // contiguous: payload landed in place
            StagingLoc::None => {
                debug_assert!(false, "unpack movement without staging");
                self.fault_stats.spurious += 1;
                return;
            }
        };
        match super::copy_tier_for(&layout, base, count) {
            super::CopyTier::Contiguous { bytes } => {
                MemPool::copy_between(src, src_off, &mut self.gpus[r].mem, base, bytes);
            }
            super::CopyTier::Runs(plan) => {
                MemPool::scatter_between_uniform(src, src_off, &mut self.gpus[r].mem, plan);
            }
            super::CopyTier::Generic => {
                MemPool::scatter_between_iter(
                    src,
                    src_off,
                    &mut self.gpus[r].mem,
                    layout.abs_segments(base, count),
                );
            }
        }
    }
}
