//! Cost accounting: the Fig.-11 breakdown buckets and the charge helpers
//! every path — control plane and data plane alike — funnels through.

use super::rank::WaitKind;
use super::Cluster;
use fusedpack_sim::{Duration, Time};
use fusedpack_telemetry::{Lane, Payload};

/// Breakdown bucket selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Bucket {
    Pack,
    Launch,
    Scheduling,
    Sync,
    Comm,
}

impl Bucket {
    /// The telemetry-crate mirror of this bucket.
    pub(crate) fn tele(self) -> fusedpack_telemetry::Bucket {
        match self {
            Bucket::Pack => fusedpack_telemetry::Bucket::Pack,
            Bucket::Launch => fusedpack_telemetry::Bucket::Launch,
            Bucket::Scheduling => fusedpack_telemetry::Bucket::Scheduling,
            Bucket::Sync => fusedpack_telemetry::Bucket::Sync,
            Bucket::Comm => fusedpack_telemetry::Bucket::Comm,
        }
    }
}

impl Cluster {
    /// Charge CPU time to a rank and a breakdown bucket.
    pub(crate) fn charge(&mut self, r: usize, cost: Duration, bucket: Bucket) {
        self.ranks[r].cpu += cost;
        self.bucket_add(r, bucket, cost);
    }

    /// Charge starting from an explicit instant (event handlers).
    pub(crate) fn charge_at(&mut self, r: usize, at: Time, cost: Duration, bucket: Bucket) {
        let rank = &mut self.ranks[r];
        rank.cpu = rank.cpu.max(at) + cost;
        self.bucket_add(r, bucket, cost);
    }

    /// Charge `d` to a bucket with the charge interval ending at the rank's
    /// current CPU clock (the common case: the work just finished).
    pub(crate) fn bucket_add(&mut self, r: usize, bucket: Bucket, d: Duration) {
        let end = self.ranks[r].cpu;
        let start = Time(end.0.saturating_sub(d.as_nanos()));
        self.bucket_add_at(r, bucket, start, d);
    }

    /// Charge `d` to a bucket with an explicit start instant. EVERY
    /// breakdown mutation goes through here, so the emitted
    /// [`Payload::BucketCharge`] spans sum to exactly the breakdown — the
    /// invariant the reconciliation check relies on.
    pub(crate) fn bucket_add_at(&mut self, r: usize, bucket: Bucket, start: Time, d: Duration) {
        {
            let b = &mut self.ranks[r].breakdown;
            match bucket {
                Bucket::Pack => b.pack += d,
                Bucket::Launch => b.launch += d,
                Bucket::Scheduling => b.scheduling += d,
                Bucket::Sync => b.sync += d,
                Bucket::Comm => b.comm += d,
            }
        }
        if d > Duration::ZERO {
            self.ranks[r]
                .tele
                .span(Lane::Accounting, start, start + d, || {
                    Payload::BucketCharge {
                        bucket: bucket.tele(),
                        label: bucket.tele().label(),
                    }
                });
        }
    }

    /// Attribute a blocked rank's wait interval up to `up_to`: network
    /// waits land in the `Comm.` bucket, local-kernel waits are already
    /// counted in `pack`.
    pub(crate) fn account_wait(&mut self, r: usize, up_to: Time) {
        let anchor = self.ranks[r].wait_anchor;
        if let Some((kind, delta)) = self.ranks[r].take_wait(up_to) {
            if kind == WaitKind::Network {
                self.bucket_add_at(r, Bucket::Comm, anchor, delta);
            }
        }
    }
}
