//! Program execution: stepping ranks through their [`AppOp`] sequences.

use super::accounting::Bucket;
use super::schemes::PathCtx;
use super::{Cluster, Event, RankId};
use crate::lifecycle::RequestLifecycle;
use crate::program::AppOp;
use crate::sendrecv::{RecvId, RecvOp, SendId, SendOp, StagingLoc};
use fusedpack_sim::Time;
use fusedpack_telemetry::{Lane, Payload, WaitKindTag};

impl Cluster {
    /// Execute ops for rank `r` starting no earlier than `t`, until it
    /// blocks or its program ends.
    pub(crate) fn step_rank(&mut self, r: usize, t: Time) {
        {
            let rank = &mut self.ranks[r];
            if rank.done || rank.blocked {
                return;
            }
            rank.cpu = rank.cpu.max(t);
        }
        loop {
            let pc = self.ranks[r].pc;
            let op = match self.ranks[r].program.ops.get(pc) {
                Some(op) => op.clone(),
                None => {
                    self.ranks[r].done = true;
                    return;
                }
            };
            self.ranks[r].pc += 1;
            match op {
                AppOp::Commit { slot, desc } => {
                    let rank = &mut self.ranks[r];
                    let (handle, cost) = rank.ddt_cache.commit(&desc);
                    rank.cpu += cost;
                    // The commit-time lookup validates the compiled layout
                    // (and charges the same lookup cost the pre-handle code
                    // paid); the slot stores only the handle — messages
                    // acquire the layout per use.
                    let (_, cost) = rank.ddt_cache.get(handle);
                    rank.cpu += cost;
                    if rank.types.len() <= slot.0 {
                        rank.types.resize(slot.0 + 1, handle);
                    }
                    rank.types[slot.0] = handle;
                }
                AppOp::Irecv {
                    buf,
                    ty,
                    count,
                    src,
                    tag,
                } => self.exec_irecv(r, buf, ty, count, src, tag),
                AppOp::Isend {
                    buf,
                    ty,
                    count,
                    dst,
                    tag,
                } => self.exec_isend(r, buf, ty, count, dst, tag),
                AppOp::Pack {
                    src,
                    ty,
                    count,
                    dst,
                } => self.exec_explicit_copy(r, src, ty, count, dst, true, true),
                AppOp::Unpack {
                    src,
                    ty,
                    count,
                    dst,
                } => self.exec_explicit_copy(r, src, ty, count, dst, false, true),
                AppOp::PackAsync {
                    src,
                    ty,
                    count,
                    dst,
                } => self.exec_explicit_copy(r, src, ty, count, dst, true, false),
                AppOp::UnpackAsync {
                    src,
                    ty,
                    count,
                    dst,
                } => self.exec_explicit_copy(r, src, ty, count, dst, false, false),
                AppOp::DeviceSync => self.exec_device_sync(r),
                AppOp::Waitall => {
                    if self.enter_waitall(r) {
                        // Blocked: resume from the op *after* Waitall once
                        // requests drain (pc already advanced).
                        return;
                    }
                }
                AppOp::Compute { ns } => {
                    // Application time, not library overhead: no bucket.
                    self.ranks[r].cpu += fusedpack_sim::Duration(ns);
                }
                AppOp::ResetTimer => {
                    let rank = &mut self.ranks[r];
                    rank.lap_start = rank.cpu;
                    rank.breakdown_at_reset = rank.breakdown;
                    rank.tele.instant(Lane::Host, rank.cpu, || Payload::Marker {
                        label: "reset-timer",
                    });
                }
                AppOp::RecordLap => {
                    let rank = &mut self.ranks[r];
                    let lap = rank.cpu.since(rank.lap_start);
                    rank.laps.push(lap);
                    let delta = rank.breakdown.delta_since(&rank.breakdown_at_reset);
                    rank.lap_breakdowns.push(delta);
                    rank.tele.instant(Lane::Host, rank.cpu, || Payload::Marker {
                        label: "record-lap",
                    });
                }
            }
        }
    }

    /// Post a receive: create the RecvOp, then try to match any unexpected
    /// message that already arrived.
    fn exec_irecv(
        &mut self,
        r: usize,
        buf: crate::program::BufId,
        ty: crate::program::TypeSlot,
        count: u64,
        src: RankId,
        tag: u32,
    ) {
        let rid = {
            let rank = &mut self.ranks[r];
            rank.cpu += self.platform.mpi_call;
            let layout = rank.ddt_cache.acquire(rank.types[ty.0]);
            let packed_bytes = layout.total_bytes(count);
            let blocks = layout.total_blocks(count);
            let rid = RecvId(rank.recvs.len());
            rank.recvs.push(RecvOp {
                id: rid,
                src,
                tag,
                user_buf: rank.bufs[buf.0],
                layout,
                count,
                packed_bytes,
                blocks,
                staging: StagingLoc::None,
                lifecycle: RequestLifecycle::recv(),
                fusion_uid: None,
                ipc_send_id: None,
            });
            rid
        };
        // An RTS or eager message may already be waiting.
        if let Some(pos) = self.ranks[r]
            .unexpected
            .iter()
            .position(|m| m.src == src && m.tag == tag && m.is_matchable())
        {
            let msg = self.ranks[r].unexpected.remove(pos);
            let now = self.ranks[r].cpu;
            self.match_message(r, rid, msg, now);
        }
    }

    /// Start a send: create the SendOp and hand it to the scheme.
    fn exec_isend(
        &mut self,
        r: usize,
        buf: crate::program::BufId,
        ty: crate::program::TypeSlot,
        count: u64,
        dst: RankId,
        tag: u32,
    ) {
        let sid = {
            let rank = &mut self.ranks[r];
            rank.cpu += self.platform.mpi_call;
            let layout = rank.ddt_cache.acquire(rank.types[ty.0]);
            let packed_bytes = layout.total_bytes(count);
            let blocks = layout.total_blocks(count);
            let sid = SendId(rank.sends.len());
            rank.sends.push(SendOp {
                id: sid,
                dst,
                tag,
                user_buf: rank.bufs[buf.0],
                layout,
                count,
                packed_bytes,
                blocks,
                eager: packed_bytes <= self.platform.eager_limit,
                staging: StagingLoc::None,
                lifecycle: RequestLifecycle::send(),
                cts: None,
                fusion_uid: None,
            });
            sid
        };
        self.begin_pack(r, sid);
    }

    /// Explicit pack/unpack between two device buffers (Algorithms 1 & 2).
    ///
    /// `pack == true` gathers the non-contiguous `src` into the contiguous
    /// `dst`; `pack == false` scatters the contiguous `src` out to `dst`.
    /// `blocking` selects MPI-style per-call synchronization (Algorithm 1)
    /// vs application-style fire-and-forget (Algorithm 2).
    #[allow(clippy::too_many_arguments)]
    fn exec_explicit_copy(
        &mut self,
        r: usize,
        src: crate::program::BufId,
        ty: crate::program::TypeSlot,
        count: u64,
        dst: crate::program::BufId,
        pack: bool,
        blocking: bool,
    ) {
        use super::CopyTier;
        use fusedpack_gpu::SegmentStats;
        let (layout, src_ptr, dst_ptr) = {
            let rank = &mut self.ranks[r];
            let layout = rank.ddt_cache.acquire(rank.types[ty.0]);
            (layout, rank.bufs[src.0], rank.bufs[dst.0])
        };
        let stats = SegmentStats::new(layout.total_bytes(count), layout.total_blocks(count));
        // Data movement within device memory, dispatched on the copy plan
        // the layout compiler classified at commit time.
        if pack {
            match super::copy_tier_for(&layout, src_ptr.addr, count) {
                CopyTier::Contiguous { bytes } => {
                    self.gpus[r]
                        .mem
                        .copy_within(src_ptr.addr, dst_ptr.addr, bytes);
                }
                CopyTier::Runs(plan) => {
                    self.gpus[r].mem.gather_uniform(plan, dst_ptr.addr);
                }
                CopyTier::Generic => {
                    self.gpus[r]
                        .mem
                        .gather_iter(layout.abs_segments(src_ptr.addr, count), dst_ptr.addr);
                }
            }
        } else {
            match super::copy_tier_for(&layout, dst_ptr.addr, count) {
                CopyTier::Contiguous { bytes } => {
                    self.gpus[r]
                        .mem
                        .copy_within(src_ptr.addr, dst_ptr.addr, bytes);
                }
                CopyTier::Runs(plan) => {
                    self.gpus[r].mem.scatter_uniform(src_ptr.addr, plan);
                }
                CopyTier::Generic => {
                    self.gpus[r]
                        .mem
                        .scatter_iter(src_ptr.addr, layout.abs_segments(dst_ptr.addr, count));
                }
            }
        }
        if blocking {
            // MPI_Pack/MPI_Unpack: the library parses the datatype and
            // synchronizes at the kernel boundary before returning.
            let rank = &mut self.ranks[r];
            rank.cpu +=
                self.platform.mpi_call + fusedpack_datatype::cache::parse_cost(stats.num_blocks);
            self.sync_kernel_public(r, stats);
        } else {
            // Application kernel: launch on a round-robin stream, return.
            let stream = {
                let rank = &mut self.ranks[r];
                let s = rank.next_stream % 4;
                rank.next_stream = rank.next_stream.wrapping_add(1);
                fusedpack_gpu::StreamId(s)
            };
            let at = self.ranks[r].cpu;
            let k = self.gpus[r].launch_kernel(at, stream, stats);
            let launch_cpu = self.gpus[r].arch.launch_cpu;
            self.ranks[r].cpu = k.cpu_release;
            self.ranks[r].app_kernels_done = self.ranks[r].app_kernels_done.max(k.done);
            self.bucket_add_at(r, Bucket::Launch, at, launch_cpu);
            self.bucket_add_at(r, Bucket::Pack, k.start, k.done.since(k.start));
        }
    }

    /// `cudaDeviceSynchronize`: block until application kernels drain.
    fn exec_device_sync(&mut self, r: usize) {
        let sync_call = self.gpus[r].arch.stream_sync_call;
        let rank = &mut self.ranks[r];
        let start = rank.cpu;
        let wait = rank.app_kernels_done.since(rank.cpu);
        rank.cpu = rank.cpu.max(rank.app_kernels_done) + sync_call;
        let end = rank.cpu;
        rank.tele
            .span(Lane::Host, start, end, || Payload::SyncWait {
                kind: WaitKindTag::LocalKernel,
            });
        self.bucket_add_at(r, Bucket::Sync, start, wait + sync_call);
    }

    /// Enter Waitall. Returns `true` if the rank blocked.
    fn enter_waitall(&mut self, r: usize) -> bool {
        // The rank reached a synchronization point: let the engine flush
        // whatever its data plane has been batching.
        let engine = self.engine.clone();
        engine.on_sync_point(&mut PathCtx { cl: self, r });
        if self.ranks[r].all_requests_complete() {
            self.exit_waitall(r);
            return false;
        }
        let rank = &mut self.ranks[r];
        rank.blocked = true;
        rank.wait_anchor = rank.cpu;
        rank.wait_span = rank.tele.open(Lane::Host, rank.cpu, || Payload::SyncWait {
            kind: WaitKindTag::Network,
        });
        true
    }

    /// All requests drained: free them and reset staging pools.
    fn exit_waitall(&mut self, r: usize) {
        let rank = &mut self.ranks[r];
        rank.cpu += self.platform.mpi_call;
        debug_assert!(rank.uid_map.is_empty(), "fusion uids leaked");
        debug_assert!(
            rank.fusion_requeue.is_empty(),
            "backpressure requeue leaked past Waitall"
        );
        rank.sends.clear();
        rank.recvs.clear();
        self.staging_mems[r].reset();
        self.host_mems[r].reset();
    }

    /// Called whenever a request completes: if the rank is blocked in
    /// Waitall and everything is done, unblock and continue.
    pub(crate) fn check_unblock(&mut self, r: usize, now: Time) {
        if !self.ranks[r].blocked {
            return;
        }
        if !self.ranks[r].all_requests_complete() {
            return;
        }
        let resume = {
            let rank = &mut self.ranks[r];
            rank.blocked = false;
            rank.cpu = rank.cpu.max(now);
            let span = rank.wait_span.take();
            rank.tele.close(span, rank.cpu);
            rank.cpu
        };
        self.exit_waitall(r);
        let key = self.next_key(r);
        let rid = self.ranks[r].id;
        self.events
            .push_at_key(resume.max(self.events.now()), key, Event::Wake(rid));
    }
}
