//! Scheme-specific packing/unpacking logic.
//!
//! Every scheme must answer two calls: [`Cluster::begin_pack`] when an
//! `Isend` with a non-contiguous GPU buffer starts, and
//! [`Cluster::begin_unpack`] when a payload lands in receive staging. The
//! differences between the paper's five designs live entirely here.

use super::{Cluster, Event};
use crate::message::WireKind;
use crate::scheme::{NaiveFlavor, SchemeKind};
use crate::sendrecv::{PackState, RecvId, RecvState, SendId, StagingLoc};
use fusedpack_core::{EnqueueError, FlushReason, FusionOp, Uid};
use fusedpack_datatype::cache::{lookup_cost, parse_cost};
use fusedpack_gpu::{SegmentStats, StreamId};
use fusedpack_sim::{Duration, FaultSite, Time};
use fusedpack_telemetry::{Lane, Payload, WaitKindTag};

use super::rank::{OpRef, RequeuedOp, WaitKind};

/// Number of streams the GPU-Async scheme \[23\] multiplexes kernels over.
const ASYNC_STREAMS: u32 = 4;

/// Per-operation task bookkeeping of the GPU-Async design \[23\]: callback
/// registration and completion-queue management, beyond the raw
/// `cudaEventRecord` (part of its "Scheduling" cost in Fig. 11).
const ASYNC_TASK_COST: Duration = Duration(1_500);

impl Cluster {
    /// Start packing for a send, per the active scheme.
    pub(crate) fn begin_pack(&mut self, r: usize, sid: SendId) {
        let (bytes, blocks, eager, contiguous, user_buf) = {
            let s = &self.ranks[r].sends[sid.0];
            (
                s.packed_bytes,
                s.blocks,
                s.eager,
                s.layout.is_contiguous_for(s.count),
                s.user_buf,
            )
        };
        // Contiguous layouts need no packing at all: send in place from the
        // user buffer (GPUDirect).
        if contiguous {
            self.charge(r, lookup_cost(), Bucket::Sync);
            let send = &mut self.ranks[r].sends[sid.0];
            send.staging = StagingLoc::UserGpu(fusedpack_gpu::DevPtr {
                addr: user_buf.addr,
                len: bytes,
            });
            send.pack = PackState::Done;
            self.send_rts_or_issue(r, sid, eager);
            return;
        }
        let stats = SegmentStats::new(bytes, blocks);

        match self.scheme.clone() {
            SchemeKind::GpuSync => {
                self.charge(r, parse_cost(blocks), Bucket::Sync);
                let staging = self.alloc_send_staging(r, bytes, false);
                self.ranks[r].sends[sid.0].staging = staging;
                self.apply_pack_movement(r, sid);
                self.sync_kernel(r, stats, Bucket::Pack);
                self.ranks[r].sends[sid.0].pack = PackState::Done;
                self.send_rts_or_issue(r, sid, eager);
            }
            SchemeKind::GpuAsync => {
                self.charge(r, parse_cost(blocks), Bucket::Sync);
                self.charge(r, ASYNC_TASK_COST, Bucket::Scheduling);
                let staging = self.alloc_send_staging(r, bytes, false);
                self.ranks[r].sends[sid.0].staging = staging;
                self.apply_pack_movement(r, sid);
                let arch_event_record = self.gpus[r].arch.event_record;
                let stream = self.async_stream(r);
                let at = self.ranks[r].cpu;
                let k = self.gpus[r].launch_kernel(at, stream, stats);
                let launch_cpu = self.gpus[r].arch.launch_cpu;
                self.ranks[r].cpu = k.cpu_release + arch_event_record;
                self.bucket_add_at(r, Bucket::Launch, at, launch_cpu);
                self.bucket_add_at(r, Bucket::Pack, k.start, k.done.since(k.start));
                self.bucket_add_at(r, Bucket::Scheduling, k.cpu_release, arch_event_record);
                self.ranks[r].sends[sid.0].pack = PackState::InFlight;
                let rank_id = self.ranks[r].id;
                self.events
                    .push_at(k.done.max(self.events.now()), Event::PackDone(rank_id, sid));
                // RTS overlaps with the packing kernel.
                self.send_rts_or_issue(r, sid, eager);
            }
            SchemeKind::Fusion(cfg) | SchemeKind::FusionAdaptive(cfg) => {
                self.charge(r, lookup_cost(), Bucket::Sync);
                let dst = self.ranks[r].sends[sid.0].dst;
                let same_node = self.ranks[r].node == self.ranks[dst.0 as usize].node;
                if cfg.enable_direct_ipc && same_node {
                    // DirectIPC (the zero-copy scheme of [24], fused as a
                    // third operation kind): no packing at all on the
                    // sender — advertise the source buffer in the RTS and
                    // wait for the receiver's fused load to finish (Fin).
                    let (tag, origin, bytes) = {
                        let s = &self.ranks[r].sends[sid.0];
                        (s.tag, s.user_buf.addr, s.packed_bytes)
                    };
                    self.ranks[r].sends[sid.0].pack = PackState::Done;
                    self.ranks[r].sends[sid.0].rts_sent = true;
                    self.ranks[r].sends[sid.0].data_issued = true;
                    self.send_ctrl(
                        r,
                        dst,
                        tag,
                        WireKind::Rts {
                            send_id: sid,
                            packed_bytes: bytes,
                            ipc_origin: Some(origin),
                            rget: false,
                        },
                    );
                    return;
                }
                let staging = self.alloc_send_staging(r, bytes, false);
                self.ranks[r].sends[sid.0].staging = staging;
                self.apply_pack_movement(r, sid);
                // RPUT: RTS goes out before packing happens (§IV-B1),
                // overlapping the handshake with the fused kernel.
                self.send_rts_or_issue(r, sid, eager);
                match self.fusion_enqueue(r, FusionOp::Pack, sid.0, true) {
                    Ok(uid) => {
                        self.ranks[r].sends[sid.0].fusion_uid = Some(uid);
                        self.ranks[r].sends[sid.0].pack = PackState::InFlight;
                        self.ranks[r].uid_map.insert(uid, OpRef::Send(sid.0));
                        if self.ranks[r]
                            .sched
                            .as_ref()
                            .expect("fusion")
                            .threshold_reached()
                        {
                            self.fusion_flush(r, FlushReason::ThresholdReached);
                        }
                    }
                    Err(EnqueueError::RingFull) => {
                        // Backpressure ladder: force a pressure flush and
                        // park the pack until a retirement frees a slot.
                        if self.fusion_backpressure(r, RequeuedOp::Pack(sid.0)) {
                            self.ranks[r].sends[sid.0].pack = PackState::InFlight;
                        } else {
                            // Last rung — the paper's fallback path
                            // (negative UID): process this message with the
                            // synchronous kernel scheme.
                            self.sync_kernel(r, stats, Bucket::Pack);
                            self.ranks[r].sends[sid.0].pack = PackState::Done;
                            self.try_issue(r, sid);
                        }
                    }
                }
            }
            SchemeKind::CpuGpuHybrid | SchemeKind::Adaptive => {
                self.charge(r, lookup_cost(), Bucket::Sync);
                let cpu_path =
                    self.hybrid.use_cpu_path(bytes, blocks) && self.gpus[r].gdr.available;
                if cpu_path {
                    let staging = self.alloc_send_staging(r, bytes, true);
                    self.ranks[r].sends[sid.0].staging = staging;
                    self.apply_pack_movement(r, sid);
                    let cost = self.gpus[r].gdr.read_time(stats);
                    self.charge(r, cost, Bucket::Pack);
                } else {
                    let staging = self.alloc_send_staging(r, bytes, false);
                    self.ranks[r].sends[sid.0].staging = staging;
                    self.apply_pack_movement(r, sid);
                    self.sync_kernel(r, stats, Bucket::Pack);
                }
                self.ranks[r].sends[sid.0].pack = PackState::Done;
                self.send_rts_or_issue(r, sid, eager);
            }
            SchemeKind::NaiveCopy(flavor) => {
                self.charge(r, parse_cost(blocks), Bucket::Sync);
                let staging = self.alloc_send_staging(r, bytes, true);
                self.ranks[r].sends[sid.0].staging = staging;
                self.apply_pack_movement(r, sid);
                let done = self.naive_staged_copies(r, stats, flavor);
                self.ranks[r].sends[sid.0].pack = PackState::InFlight;
                let rank_id = self.ranks[r].id;
                self.events
                    .push_at(done.max(self.events.now()), Event::PackDone(rank_id, sid));
            }
        }
    }

    /// Start unpacking for a receive whose payload just landed in staging.
    pub(crate) fn begin_unpack(&mut self, r: usize, rid: RecvId) {
        let (bytes, blocks) = {
            let op = &self.ranks[r].recvs[rid.0];
            (op.packed_bytes, op.blocks)
        };
        // Contiguous payloads already landed in the user buffer.
        if matches!(self.ranks[r].recvs[rid.0].staging, StagingLoc::UserGpu(_)) {
            let rank = &mut self.ranks[r];
            rank.recvs[rid.0].unpack = PackState::Done;
            rank.recvs[rid.0].state = RecvState::Complete;
            let now = rank.cpu;
            self.check_unblock(r, now);
            return;
        }
        let stats = SegmentStats::new(bytes, blocks);

        match self.scheme.clone() {
            SchemeKind::GpuSync => {
                self.charge(r, parse_cost(blocks), Bucket::Sync);
                self.sync_kernel(r, stats, Bucket::Pack);
                self.finish_unpack(r, rid);
            }
            SchemeKind::GpuAsync => {
                self.charge(r, parse_cost(blocks), Bucket::Sync);
                self.charge(r, ASYNC_TASK_COST, Bucket::Scheduling);
                let arch_event_record = self.gpus[r].arch.event_record;
                let stream = self.async_stream(r);
                let at = self.ranks[r].cpu;
                let k = self.gpus[r].launch_kernel(at, stream, stats);
                let launch_cpu = self.gpus[r].arch.launch_cpu;
                self.ranks[r].cpu = k.cpu_release + arch_event_record;
                self.bucket_add_at(r, Bucket::Launch, at, launch_cpu);
                self.bucket_add_at(r, Bucket::Pack, k.start, k.done.since(k.start));
                self.bucket_add_at(r, Bucket::Scheduling, k.cpu_release, arch_event_record);
                self.ranks[r].recvs[rid.0].unpack = PackState::InFlight;
                let rank_id = self.ranks[r].id;
                self.events.push_at(
                    k.done.max(self.events.now()),
                    Event::UnpackDone(rank_id, rid),
                );
            }
            SchemeKind::Fusion(_) | SchemeKind::FusionAdaptive(_) => {
                self.charge(r, lookup_cost(), Bucket::Sync);
                match self.fusion_enqueue(r, FusionOp::Unpack, rid.0, false) {
                    Ok(uid) => {
                        self.ranks[r].recvs[rid.0].fusion_uid = Some(uid);
                        self.ranks[r].recvs[rid.0].unpack = PackState::InFlight;
                        self.ranks[r].uid_map.insert(uid, OpRef::Recv(rid.0));
                        let sched = self.ranks[r].sched.as_ref().expect("fusion");
                        if sched.threshold_reached() {
                            self.fusion_flush(r, FlushReason::ThresholdReached);
                        } else if !self.ranks[r].recvs_awaiting_data() {
                            // No more arrivals can fuse with this batch:
                            // launching now is the paper's scenario 1 from
                            // the receiver's perspective.
                            self.fusion_flush(r, FlushReason::SyncPoint);
                        }
                    }
                    Err(EnqueueError::RingFull) => {
                        if self.fusion_backpressure(r, RequeuedOp::Unpack(rid.0)) {
                            self.ranks[r].recvs[rid.0].unpack = PackState::InFlight;
                        } else {
                            self.sync_kernel(r, stats, Bucket::Pack);
                            self.finish_unpack(r, rid);
                        }
                    }
                }
            }
            SchemeKind::CpuGpuHybrid | SchemeKind::Adaptive => {
                self.charge(r, lookup_cost(), Bucket::Sync);
                if self.ranks[r].recvs[rid.0].staging.is_host() {
                    let cost = self.gpus[r].gdr.write_time(stats);
                    self.charge(r, cost, Bucket::Pack);
                } else {
                    self.sync_kernel(r, stats, Bucket::Pack);
                }
                self.finish_unpack(r, rid);
            }
            SchemeKind::NaiveCopy(flavor) => {
                self.charge(r, parse_cost(blocks), Bucket::Sync);
                let done = self.naive_staged_copies(r, stats, flavor);
                self.ranks[r].recvs[rid.0].unpack = PackState::InFlight;
                let rank_id = self.ranks[r].id;
                self.events
                    .push_at(done.max(self.events.now()), Event::UnpackDone(rank_id, rid));
            }
        }
    }

    /// An asynchronous pack finished (GPU-Async event / naive DMA).
    pub(crate) fn on_pack_done(&mut self, r: usize, sid: SendId, t: Time) {
        let eff = self.eff_now(r, t);
        self.account_wait(r, eff);
        let detect = self.completion_detect_cost(r);
        self.charge_at(r, eff, detect, Bucket::Sync);
        self.ranks[r].sends[sid.0].pack = PackState::Done;
        let eager = self.ranks[r].sends[sid.0].eager;
        self.send_rts_or_issue(r, sid, eager);
    }

    /// An asynchronous unpack finished.
    pub(crate) fn on_unpack_done(&mut self, r: usize, rid: RecvId, t: Time) {
        let eff = self.eff_now(r, t);
        self.account_wait(r, eff);
        let detect = self.completion_detect_cost(r);
        self.charge_at(r, eff, detect, Bucket::Sync);
        self.finish_unpack(r, rid);
    }

    /// A fused-kernel cooperative group signalled a request's completion.
    pub(crate) fn on_fusion_done(&mut self, r: usize, uid: Uid, t: Time) {
        let eff = self.eff_now(r, t);
        self.account_wait(r, eff);
        let signalled = {
            let sched = self.ranks[r].sched.as_mut().expect("fusion scheme");
            sched.signal_completion(uid)
        };
        if !signalled {
            // A duplicate signal for an already-retired request (possible
            // under fault injection) is absorbed, not fatal.
            self.fault_stats.spurious += 1;
            return;
        }
        let (query_cost, complete_cost) = {
            let sched = self.ranks[r].sched.as_mut().expect("fusion scheme");
            let (done, qc) = sched.query(eff, uid);
            debug_assert!(done);
            (qc, sched.retire(eff, uid))
        };
        self.charge_at(r, eff, query_cost, Bucket::Sync);
        self.charge(r, complete_cost, Bucket::Scheduling);

        let Some(opref) = self.ranks[r].uid_map.remove(&uid) else {
            self.fault_stats.spurious += 1;
            return;
        };
        match opref {
            OpRef::Send(i) => {
                self.ranks[r].sends[i].pack = PackState::Done;
                self.try_issue(r, SendId(i));
            }
            OpRef::Recv(i) => self.finish_unpack(r, RecvId(i)),
        }
        // The retirement freed a ring slot: operations parked by the
        // backpressure ladder can now re-enqueue.
        if !self.ranks[r].fusion_requeue.is_empty() {
            self.drain_fusion_requeue(r);
        }
    }

    /// Launch one fused kernel over the pending requests (§IV-A2 ②).
    pub(crate) fn fusion_flush(&mut self, r: usize, reason: FlushReason) {
        let mut sched = self.ranks[r].sched.take().expect("fusion scheme");
        loop {
            if !sched.has_pending() {
                break;
            }
            let now = self.ranks[r].cpu;
            // Degradation ladder: a failed cooperative launch costs one
            // wasted driver call, then the batch runs as serial per-request
            // kernels instead of one fused grid.
            let degraded = self.fault_fires(r, FaultSite::FusedLaunchFail, now);
            let batch = if degraded {
                let wasted = self.gpus[r].arch.launch_cpu;
                self.ranks[r].cpu += wasted;
                self.bucket_add_at(r, Bucket::Launch, now, wasted);
                self.fault_degraded(r, FaultSite::FusedLaunchFail, "serial-kernels", now);
                let at = self.ranks[r].cpu;
                sched.flush_degraded(at, &mut self.gpus[r], StreamId(0), reason)
            } else {
                sched.flush(now, &mut self.gpus[r], StreamId(0), reason)
            };
            let Some(batch) = batch else {
                break;
            };
            // A degraded flush pays one launch per request, a fused one a
            // single cooperative launch.
            let launches = if degraded { batch.uids.len() as u64 } else { 1 };
            let launch_cpu = self.gpus[r].arch.launch_cpu * launches;
            self.ranks[r].cpu = batch.launch.cpu_release;
            self.bucket_add_at(r, Bucket::Launch, now, launch_cpu);
            self.bucket_add_at(
                r,
                Bucket::Pack,
                batch.launch.start,
                batch.launch.done.since(batch.launch.start),
            );
            let rank_id = self.ranks[r].id;
            for (&uid, &done) in batch.uids.iter().zip(&batch.launch.request_done) {
                let mut done = done;
                if self.fault_fires(r, FaultSite::FusedFlagLost, done) {
                    // The per-request completion flag never lands; the
                    // progress engine's watchdog re-polls the ring and
                    // rescues the request one spike later. Data movement is
                    // unaffected (it was applied at enqueue).
                    let spike = self.fault_spike(FaultSite::FusedFlagLost);
                    self.fault_recovered(spike);
                    done += spike;
                }
                self.events
                    .push_at(done.max(self.events.now()), Event::FusionDone(rank_id, uid));
            }
            // One batch per flush unless more than max_fused were pending.
            if !sched.has_pending() {
                break;
            }
        }
        self.ranks[r].sched = Some(sched);
    }

    /// Fuse a DirectIPC request on the receiver: its cooperative groups
    /// will load the sender's buffer over NVLink/PCIe straight into the
    /// local user buffer — no staging, no wire payload.
    pub(crate) fn begin_direct_ipc(&mut self, r: usize, rid: RecvId, src: usize, origin: u64) {
        self.charge(r, lookup_cost(), Bucket::Sync);
        // Apply the data movement now (visible at the completion event):
        // gather from the peer GPU, scatter into the local user buffer.
        // The sender's layout is taken to equal the receiver's committed
        // layout — valid for MPI's matched-signature transfers; a full
        // implementation would ship the sender's cached-layout handle in
        // the RTS, as [24] does for its IPC cache exchange.
        {
            let (layout, count, user_buf) = {
                let op = &self.ranks[r].recvs[rid.0];
                (op.layout.clone(), op.count, op.user_buf)
            };
            let mut packed = self.buf_pool.take(layout.total_bytes(count) as usize);
            self.gpus[src]
                .mem
                .gather_into(layout.abs_segments(origin, count), &mut packed);
            self.gpus[r]
                .mem
                .scatter_from_slice_iter(&packed, layout.abs_segments(user_buf.addr, count));
            self.buf_pool.put(packed);
        }
        match self.fusion_enqueue_ipc(r, rid.0, origin) {
            Ok(uid) => {
                self.ranks[r].recvs[rid.0].fusion_uid = Some(uid);
                self.ranks[r].recvs[rid.0].unpack = PackState::InFlight;
                self.ranks[r].uid_map.insert(uid, OpRef::Recv(rid.0));
                let sched = self.ranks[r].sched.as_ref().expect("fusion");
                if sched.threshold_reached() {
                    self.fusion_flush(r, FlushReason::ThresholdReached);
                } else if !self.ranks[r].recvs_awaiting_data() {
                    self.fusion_flush(r, FlushReason::SyncPoint);
                }
            }
            Err(EnqueueError::RingFull) => {
                let parked =
                    self.fusion_backpressure(r, RequeuedOp::DirectIpc { rid: rid.0, origin });
                if parked {
                    self.ranks[r].recvs[rid.0].unpack = PackState::InFlight;
                } else {
                    // Fallback: a standalone link-capped kernel, synchronous.
                    let (bytes, blocks) = {
                        let op = &self.ranks[r].recvs[rid.0];
                        (op.packed_bytes, op.blocks)
                    };
                    let stats = SegmentStats::new(bytes, blocks);
                    self.sync_kernel(r, stats, Bucket::Pack);
                    self.finish_unpack(r, rid);
                }
            }
        }
    }

    /// Enqueue the DirectIPC fusion request for receive `rid` (shared by
    /// [`Cluster::begin_direct_ipc`] and the backpressure requeue drain).
    fn fusion_enqueue_ipc(
        &mut self,
        r: usize,
        rid: usize,
        origin: u64,
    ) -> Result<Uid, EnqueueError> {
        let now = self.ranks[r].cpu;
        if self.fault_fires(r, FaultSite::RingExhausted, now) {
            return Err(EnqueueError::RingFull);
        }
        let link_bw = self.platform.gpu_gpu.bw;
        let (origin_ptr, target, layout, count) = {
            let op = &self.ranks[r].recvs[rid];
            (
                fusedpack_gpu::DevPtr {
                    addr: origin,
                    len: op.user_buf.len,
                },
                op.user_buf,
                op.layout.clone(),
                op.count,
            )
        };
        let sched = self.ranks[r].sched.as_mut().expect("fusion scheme");
        let (res, cost) = sched.enqueue(
            now,
            FusionOp::DirectIpc,
            origin_ptr,
            target,
            layout,
            count,
            Some(link_bw),
        );
        self.charge(r, cost, Bucket::Scheduling);
        res
    }

    /// DirectIPC degraded path: the peer's buffer could not be mapped, so
    /// the payload is staged — gathered on the sender's GPU into a pooled
    /// bounce buffer, bounced over the GPU↔GPU link, and scattered by a
    /// synchronous kernel — before the receive completes through the normal
    /// IPC path (Fin to the sender).
    pub(crate) fn ipc_staged_fallback(&mut self, r: usize, rid: RecvId, src: usize, origin: u64) {
        self.charge(r, lookup_cost(), Bucket::Sync);
        let (layout, count, user_buf, bytes, blocks) = {
            let op = &self.ranks[r].recvs[rid.0];
            (
                op.layout.clone(),
                op.count,
                op.user_buf,
                op.packed_bytes,
                op.blocks,
            )
        };
        // Data movement, visible at completion: same gather/scatter as the
        // zero-copy path, via the staged bounce buffer.
        {
            let mut packed = self.buf_pool.take(layout.total_bytes(count) as usize);
            self.gpus[src]
                .mem
                .gather_into(layout.abs_segments(origin, count), &mut packed);
            self.gpus[r]
                .mem
                .scatter_from_slice_iter(&packed, layout.abs_segments(user_buf.addr, count));
            self.buf_pool.put(packed);
        }
        // Timing: the bounce rides the intra-node link, then a synchronous
        // scatter kernel lands it in the user buffer.
        let at = self.ranks[r].cpu;
        let (delivered, _) = self.transport(src, r, at, bytes, false);
        self.bucket_add_at(r, Bucket::Comm, at, delivered.since(at));
        self.ranks[r].cpu = self.ranks[r].cpu.max(delivered);
        self.sync_kernel(r, SegmentStats::new(bytes, blocks), Bucket::Pack);
        self.finish_unpack(r, rid);
        // This receive may have been the one the zero-copy path counts on
        // to trigger the last-arrival flush — without it, earlier fused
        // DirectIPC requests would linger in the scheduler forever.
        let sched = self.ranks[r].sched.as_ref().expect("fusion scheme");
        if sched.has_pending() {
            if sched.threshold_reached() {
                self.fusion_flush(r, FlushReason::ThresholdReached);
            } else if !self.ranks[r].recvs_awaiting_data() {
                self.fusion_flush(r, FlushReason::SyncPoint);
            }
        }
    }

    // ---- shared helpers -------------------------------------------------

    /// Enqueue a fusion request for a send (pack) or recv (unpack).
    fn fusion_enqueue(
        &mut self,
        r: usize,
        op: FusionOp,
        idx: usize,
        is_send: bool,
    ) -> Result<Uid, EnqueueError> {
        // Injected exhaustion reports `RingFull` without touching the ring;
        // the caller's backpressure ladder recovers exactly as it would
        // from a genuinely full ring.
        let at = self.ranks[r].cpu;
        if self.fault_fires(r, FaultSite::RingExhausted, at) {
            return Err(EnqueueError::RingFull);
        }
        let (origin, target, layout, count) = if is_send {
            let s = &self.ranks[r].sends[idx];
            let StagingLoc::Gpu(staging) = s.staging else {
                panic!("fusion pack staging must be on the GPU");
            };
            (s.user_buf, staging, s.layout.clone(), s.count)
        } else {
            let op = &self.ranks[r].recvs[idx];
            let StagingLoc::Gpu(staging) = op.staging else {
                panic!("fusion unpack staging must be on the GPU");
            };
            (staging, op.user_buf, op.layout.clone(), op.count)
        };
        // Unpack data movement is applied at enqueue time: the payload is
        // already in staging, and results only become visible at the
        // completion event.
        if !is_send {
            self.apply_unpack_movement(r, RecvId(idx));
        }
        let now = self.ranks[r].cpu;
        let sched = self.ranks[r].sched.as_mut().expect("fusion scheme");
        let (res, cost) = sched.enqueue(now, op, origin, target, layout, count, None);
        self.charge(r, cost, Bucket::Scheduling);
        res
    }

    /// The ring refused an enqueue: run the backpressure ladder.
    ///
    /// Step one, force a `RingPressure` flush so pending occupants become
    /// busy and start draining. Step two, park the operation in the rank's
    /// FIFO requeue, to re-enqueue from [`Cluster::drain_fusion_requeue`]
    /// once a retirement frees a slot. Returns `false` — caller falls back
    /// to the paper's synchronous path — only when the ring is *empty*, so
    /// no retirement will ever drain the queue (an injected exhaustion);
    /// a genuinely full ring always has occupants on their way to
    /// retirement, keeping the requeue live.
    fn fusion_backpressure(&mut self, r: usize, op: RequeuedOp) -> bool {
        self.fusion_flush(r, FlushReason::RingPressure);
        let occupied = self.ranks[r]
            .sched
            .as_ref()
            .expect("fusion scheme")
            .ring_occupied();
        if occupied == 0 {
            return false;
        }
        let now = self.ranks[r].cpu;
        self.fault_degraded(r, FaultSite::RingExhausted, "requeue", now);
        self.ranks[r].fusion_requeue.push_back(op);
        true
    }

    /// Re-enqueue operations parked by the backpressure ladder, in FIFO
    /// order, until the ring refuses again (then wait for the next
    /// retirement) or the queue drains.
    pub(crate) fn drain_fusion_requeue(&mut self, r: usize) {
        let mut enqueued = false;
        while let Some(op) = self.ranks[r].fusion_requeue.pop_front() {
            let res = match op {
                RequeuedOp::Pack(i) => self.fusion_enqueue(r, FusionOp::Pack, i, true),
                RequeuedOp::Unpack(i) => self.fusion_enqueue(r, FusionOp::Unpack, i, false),
                RequeuedOp::DirectIpc { rid, origin } => self.fusion_enqueue_ipc(r, rid, origin),
            };
            match res {
                Ok(uid) => {
                    self.register_fusion_uid(r, op, uid);
                    enqueued = true;
                }
                Err(EnqueueError::RingFull) => {
                    let occupied = self.ranks[r]
                        .sched
                        .as_ref()
                        .expect("fusion scheme")
                        .ring_occupied();
                    if occupied == 0 {
                        // Nothing will ever retire: last-rung sync fallback
                        // keeps the rank live.
                        self.fusion_fallback_sync(r, op);
                    } else {
                        self.ranks[r].fusion_requeue.push_front(op);
                        break;
                    }
                }
            }
        }
        // A rank blocked in Waitall gets no further flush trigger; launch
        // what was just re-enqueued so its completions can unblock it.
        if enqueued
            && self.ranks[r].blocked
            && self.ranks[r]
                .sched
                .as_ref()
                .is_some_and(|s| s.has_pending())
        {
            self.fusion_flush(r, FlushReason::RingPressure);
        }
    }

    /// Register a successfully re-enqueued operation exactly as its
    /// original `begin_*` path would have.
    fn register_fusion_uid(&mut self, r: usize, op: RequeuedOp, uid: Uid) {
        match op {
            RequeuedOp::Pack(i) => {
                self.ranks[r].sends[i].fusion_uid = Some(uid);
                self.ranks[r].sends[i].pack = PackState::InFlight;
                self.ranks[r].uid_map.insert(uid, OpRef::Send(i));
            }
            RequeuedOp::Unpack(i) | RequeuedOp::DirectIpc { rid: i, .. } => {
                self.ranks[r].recvs[i].fusion_uid = Some(uid);
                self.ranks[r].recvs[i].unpack = PackState::InFlight;
                self.ranks[r].uid_map.insert(uid, OpRef::Recv(i));
            }
        }
    }

    /// Last rung of the backpressure ladder: process a parked operation
    /// with the synchronous kernel scheme (the paper's negative-UID path).
    fn fusion_fallback_sync(&mut self, r: usize, op: RequeuedOp) {
        match op {
            RequeuedOp::Pack(i) => {
                let (bytes, blocks) = {
                    let s = &self.ranks[r].sends[i];
                    (s.packed_bytes, s.blocks)
                };
                self.sync_kernel(r, SegmentStats::new(bytes, blocks), Bucket::Pack);
                self.ranks[r].sends[i].pack = PackState::Done;
                self.try_issue(r, SendId(i));
            }
            RequeuedOp::Unpack(i) | RequeuedOp::DirectIpc { rid: i, .. } => {
                let (bytes, blocks) = {
                    let op = &self.ranks[r].recvs[i];
                    (op.packed_bytes, op.blocks)
                };
                self.sync_kernel(r, SegmentStats::new(bytes, blocks), Bucket::Pack);
                self.finish_unpack(r, RecvId(i));
            }
        }
    }

    /// [`Cluster::sync_kernel`] for callers outside this module (explicit
    /// `MPI_Pack`/`MPI_Unpack` execution).
    pub(crate) fn sync_kernel_public(&mut self, r: usize, stats: SegmentStats) {
        self.sync_kernel(r, stats, Bucket::Pack);
    }

    /// Synchronous kernel execution: launch, then block the CPU until the
    /// kernel completes (`cudaStreamSynchronize`) — the GPU-Sync pattern.
    fn sync_kernel(&mut self, r: usize, stats: SegmentStats, kernel_bucket: Bucket) {
        let at = self.ranks[r].cpu;
        let k = self.gpus[r].launch_kernel(at, StreamId(0), stats);
        let arch = &self.gpus[r].arch;
        let launch_cpu = arch.launch_cpu;
        let sync_call = arch.stream_sync_call;
        self.ranks[r].cpu = k.done + sync_call;
        self.bucket_add_at(r, Bucket::Launch, at, launch_cpu);
        self.bucket_add_at(r, kernel_bucket, k.start, k.done.since(k.start));
        // Blocked wait from the launch call's return to kernel completion,
        // plus the synchronize call itself.
        self.bucket_add_at(
            r,
            Bucket::Sync,
            k.cpu_release,
            k.done.since(k.cpu_release) + sync_call,
        );
        self.ranks[r]
            .tele
            .span(Lane::Host, k.cpu_release, k.done + sync_call, || {
                Payload::SyncWait {
                    kind: WaitKindTag::LocalKernel,
                }
            });
    }

    /// Aggregate per-block staged copies (`cudaMemcpyAsync` each) — the
    /// production-library path. Returns the completion instant of the DMA.
    fn naive_staged_copies(&mut self, r: usize, stats: SegmentStats, flavor: NaiveFlavor) -> Time {
        let arch = &self.gpus[r].arch;
        let call = Duration::from_nanos(
            (arch.memcpy_async_call.as_nanos() as f64 * flavor.call_cost_factor()) as u64,
        );
        let issue = call * stats.num_blocks;
        let dma = arch.dma_setup * stats.num_blocks
            + self.gpus[r].host_link().transfer_time(stats.total_bytes);
        let start = self.ranks[r].cpu;
        self.bucket_add(r, Bucket::Launch, issue);
        self.bucket_add(r, Bucket::Pack, dma);
        self.ranks[r].cpu = start + issue;
        start + issue.max(dma)
    }

    /// Mark a receive fully complete.
    fn finish_unpack(&mut self, r: usize, rid: RecvId) {
        // Non-fusion schemes apply the scatter here (fusion and DirectIPC
        // applied it at enqueue). DirectIPC receives never have staging.
        if self.ranks[r].recvs[rid.0].fusion_uid.is_none()
            && self.ranks[r].recvs[rid.0].ipc_send_id.is_none()
        {
            self.apply_unpack_movement(r, rid);
        }
        let rank = &mut self.ranks[r];
        rank.recvs[rid.0].unpack = PackState::Done;
        rank.recvs[rid.0].state = RecvState::Complete;
        let ipc = rank.recvs[rid.0].ipc_send_id;
        let src = rank.recvs[rid.0].src;
        let now = rank.cpu;
        if let Some(send_id) = ipc {
            // Tell the sender its buffer is free (DirectIPC completion).
            self.send_ctrl(r, src, 0, WireKind::Fin { send_id });
        }
        self.check_unblock(r, now);
    }

    /// Send the RTS for a rendezvous message, or try the eager path.
    fn send_rts_or_issue(&mut self, r: usize, sid: SendId, eager: bool) {
        if eager || self.rndv == super::RndvProtocol::Rget {
            // Eager needs only the pack; RGET sends its RTS (with the
            // packed-buffer announcement) from try_issue once packing is
            // done — no early handshake to overlap.
            self.try_issue(r, sid);
            return;
        }
        if !self.ranks[r].sends[sid.0].rts_sent {
            self.ranks[r].sends[sid.0].rts_sent = true;
            let (dst, tag, bytes) = {
                let s = &self.ranks[r].sends[sid.0];
                (s.dst, s.tag, s.packed_bytes)
            };
            self.send_ctrl(
                r,
                dst,
                tag,
                WireKind::Rts {
                    send_id: sid,
                    packed_bytes: bytes,
                    ipc_origin: None,
                    rget: false,
                },
            );
        } else {
            self.try_issue(r, sid);
        }
    }

    /// Round-robin stream selection for GPU-Async.
    fn async_stream(&mut self, r: usize) -> StreamId {
        let rank = &mut self.ranks[r];
        let s = rank.next_stream % ASYNC_STREAMS;
        rank.next_stream = rank.next_stream.wrapping_add(1);
        StreamId(s)
    }

    /// Cost of detecting an asynchronous completion.
    ///
    /// GPU-Async's progress engine scans *every* outstanding event per
    /// progress trip (`cudaEventQuery` each), so detection cost grows with
    /// the number of in-flight kernels — the extra synchronization penalty
    /// the paper blames for GPU-Async losing to GPU-Sync on Lassen
    /// (Fig. 10 discussion).
    fn completion_detect_cost(&self, r: usize) -> Duration {
        match &self.scheme {
            SchemeKind::GpuAsync => {
                let rank = &self.ranks[r];
                let outstanding = rank
                    .sends
                    .iter()
                    .filter(|s| !s.completed && s.pack == PackState::InFlight)
                    .count()
                    + rank
                        .recvs
                        .iter()
                        .filter(|op| op.unpack == PackState::InFlight)
                        .count();
                // One query per stream-head event per progress trip.
                let scanned = outstanding.clamp(1, ASYNC_STREAMS as usize);
                self.gpus[r].arch.event_query * (scanned as u64)
            }
            _ => self.platform.progress_poll,
        }
    }

    /// Charge CPU time to a rank and a breakdown bucket.
    pub(crate) fn charge(&mut self, r: usize, cost: Duration, bucket: Bucket) {
        self.ranks[r].cpu += cost;
        self.bucket_add(r, bucket, cost);
    }

    /// Charge starting from an explicit instant (event handlers).
    fn charge_at(&mut self, r: usize, at: Time, cost: Duration, bucket: Bucket) {
        let rank = &mut self.ranks[r];
        rank.cpu = rank.cpu.max(at) + cost;
        self.bucket_add(r, bucket, cost);
    }

    /// Charge `d` to a bucket with the charge interval ending at the rank's
    /// current CPU clock (the common case: the work just finished).
    fn bucket_add(&mut self, r: usize, bucket: Bucket, d: Duration) {
        let end = self.ranks[r].cpu;
        let start = Time(end.0.saturating_sub(d.as_nanos()));
        self.bucket_add_at(r, bucket, start, d);
    }

    /// Charge `d` to a bucket with an explicit start instant. EVERY
    /// breakdown mutation goes through here, so the emitted
    /// [`Payload::BucketCharge`] spans sum to exactly the breakdown — the
    /// invariant the reconciliation check relies on.
    pub(crate) fn bucket_add_at(&mut self, r: usize, bucket: Bucket, start: Time, d: Duration) {
        {
            let b = &mut self.ranks[r].breakdown;
            match bucket {
                Bucket::Pack => b.pack += d,
                Bucket::Launch => b.launch += d,
                Bucket::Scheduling => b.scheduling += d,
                Bucket::Sync => b.sync += d,
                Bucket::Comm => b.comm += d,
            }
        }
        if d > Duration::ZERO {
            self.ranks[r]
                .tele
                .span(Lane::Accounting, start, start + d, || {
                    Payload::BucketCharge {
                        bucket: bucket.tele(),
                        label: bucket.tele().label(),
                    }
                });
        }
    }

    /// Attribute a blocked rank's wait interval up to `up_to`: network
    /// waits land in the `Comm.` bucket, local-kernel waits are already
    /// counted in `pack`.
    pub(crate) fn account_wait(&mut self, r: usize, up_to: Time) {
        let anchor = self.ranks[r].wait_anchor;
        if let Some((kind, delta)) = self.ranks[r].take_wait(up_to) {
            if kind == WaitKind::Network {
                self.bucket_add_at(r, Bucket::Comm, anchor, delta);
            }
        }
    }
}

/// Breakdown bucket selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Bucket {
    Pack,
    Launch,
    Scheduling,
    Sync,
    Comm,
}

impl Bucket {
    /// The telemetry-crate mirror of this bucket.
    pub(crate) fn tele(self) -> fusedpack_telemetry::Bucket {
        match self {
            Bucket::Pack => fusedpack_telemetry::Bucket::Pack,
            Bucket::Launch => fusedpack_telemetry::Bucket::Launch,
            Bucket::Scheduling => fusedpack_telemetry::Bucket::Scheduling,
            Bucket::Sync => fusedpack_telemetry::Bucket::Sync,
            Bucket::Comm => fusedpack_telemetry::Bucket::Comm,
        }
    }
}
