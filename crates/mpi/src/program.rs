//! Per-rank application programs.
//!
//! Benchmarks and examples describe each rank's behaviour as a small
//! sequence of operations — the same structure as the paper's Algorithm 3
//! (MPI-level implicit pack/unpack):
//!
//! ```text
//! commit(ddt)
//! for each neighbor i, buffer j:  irecv(rbuf[i][j], ddt, ...)
//! for each neighbor i, buffer j:  isend(sbuf[i][j], ddt, ...)
//! waitall
//! ```
//!
//! Buffers are declared up front ([`BufDecl`]) and allocated on the rank's
//! GPU by the cluster builder; programs refer to them by [`BufId`].

use crate::cluster::RankId;
use fusedpack_datatype::TypeDesc;
use std::sync::Arc;

/// Index of a declared buffer on a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufId(pub usize);

/// Index of a committed datatype on a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TypeSlot(pub usize);

/// How a declared buffer is initialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufInit {
    /// Zero-filled.
    Zero,
    /// Deterministic pseudo-random bytes from the given seed (used by
    /// correctness tests to verify end-to-end transfers).
    Random(u64),
}

/// A buffer declaration.
#[derive(Debug, Clone)]
pub struct BufDecl {
    pub len: u64,
    pub init: BufInit,
}

/// One application-level operation.
#[derive(Debug, Clone)]
pub enum AppOp {
    /// `MPI_Type_commit` into a type slot.
    Commit { slot: TypeSlot, desc: Arc<TypeDesc> },
    /// `MPI_Irecv(buf, count, type, src, tag)`.
    Irecv {
        buf: BufId,
        ty: TypeSlot,
        count: u64,
        src: RankId,
        tag: u32,
    },
    /// `MPI_Isend(buf, count, type, dst, tag)`.
    Isend {
        buf: BufId,
        ty: TypeSlot,
        count: u64,
        dst: RankId,
        tag: u32,
    },
    /// `MPI_Waitall` on every outstanding request.
    Waitall,
    /// `MPI_Pack` (Algorithm 1): *blocking* pack of `count` elements of
    /// `ty` from `src` into the contiguous buffer `dst`. The MPI library
    /// must synchronize before returning — the overhead §III-A analyzes.
    Pack {
        src: BufId,
        ty: TypeSlot,
        count: u64,
        dst: BufId,
    },
    /// `MPI_Unpack` (Algorithm 1): blocking unpack of a contiguous `src`
    /// buffer into `count` elements of `ty` at `dst`.
    Unpack {
        src: BufId,
        ty: TypeSlot,
        count: u64,
        dst: BufId,
    },
    /// Application-level asynchronous pack kernel (Algorithm 2): launch and
    /// return; completion is observed by a later [`AppOp::DeviceSync`].
    PackAsync {
        src: BufId,
        ty: TypeSlot,
        count: u64,
        dst: BufId,
    },
    /// Application-level asynchronous unpack kernel (Algorithm 2).
    UnpackAsync {
        src: BufId,
        ty: TypeSlot,
        count: u64,
        dst: BufId,
    },
    /// `cudaDeviceSynchronize`: block until every application-launched
    /// kernel has drained (the single sync point of Algorithm 2).
    DeviceSync,
    /// Pure application think time: advance the rank's CPU clock by `ns`
    /// nanoseconds without entering the library. Sustained-load (serve)
    /// workloads use this to space request arrivals deterministically.
    Compute { ns: u64 },
    /// Start (or restart) the rank's lap timer.
    ResetTimer,
    /// Record the elapsed lap into the run report.
    RecordLap,
}

/// A rank's full program: buffer declarations plus the operation sequence.
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub buffers: Vec<BufDecl>,
    pub ops: Vec<AppOp>,
}

impl Program {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a buffer; returns its id.
    pub fn buffer(&mut self, len: u64, init: BufInit) -> BufId {
        self.buffers.push(BufDecl { len, init });
        BufId(self.buffers.len() - 1)
    }

    pub fn push(&mut self, op: AppOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Number of Isend/Irecv operations (for sizing diagnostics).
    pub fn comm_op_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, AppOp::Isend { .. } | AppOp::Irecv { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusedpack_datatype::TypeBuilder;

    #[test]
    fn program_builder_assigns_ids() {
        let mut p = Program::new();
        let a = p.buffer(1024, BufInit::Zero);
        let b = p.buffer(2048, BufInit::Random(7));
        assert_eq!(a, BufId(0));
        assert_eq!(b, BufId(1));
        assert_eq!(p.buffers.len(), 2);
    }

    #[test]
    fn comm_op_count_counts_sends_and_recvs() {
        let mut p = Program::new();
        let buf = p.buffer(64, BufInit::Zero);
        p.push(AppOp::Commit {
            slot: TypeSlot(0),
            desc: TypeBuilder::int(),
        });
        p.push(AppOp::Irecv {
            buf,
            ty: TypeSlot(0),
            count: 1,
            src: RankId(1),
            tag: 0,
        });
        p.push(AppOp::Isend {
            buf,
            ty: TypeSlot(0),
            count: 1,
            dst: RankId(1),
            tag: 0,
        });
        p.push(AppOp::Waitall);
        assert_eq!(p.comm_op_count(), 2);
    }
}
