//! # fusedpack-mpi
//!
//! A GPU-aware, MPI-like communication middleware running on the simulated
//! cluster: non-blocking point-to-point operations with tag matching, eager
//! and rendezvous (RPUT) protocols over the modelled fabric, a per-rank
//! progress engine, and — the point of the whole exercise — *pluggable
//! derived-datatype processing schemes* for GPU-resident buffers:
//!
//! | scheme | paper name | mechanism |
//! |---|---|---|
//! | [`SchemeKind::GpuSync`] | GPU-Sync \[8,22\] | pack kernel + `cudaStreamSynchronize` per message |
//! | [`SchemeKind::GpuAsync`] | GPU-Async \[23\] | pack kernel + event record/query per message, multi-stream |
//! | [`SchemeKind::CpuGpuHybrid`] | CPU-GPU-Hybrid \[24\] | GDRCopy CPU path for dense/small, cached-layout kernels otherwise |
//! | [`SchemeKind::Fusion`] | Proposed | dynamic kernel fusion via `fusedpack-core` |
//! | [`SchemeKind::FusionAdaptive`] | Proposed-Adaptive | fusion + online threshold control + cost-guided partitioning |
//! | [`SchemeKind::NaiveCopy`] | SpectrumMPI / OpenMPI | one `cudaMemcpyAsync` per contiguous block |
//! | [`SchemeKind::Adaptive`] | MVAPICH2-GDR | per-message choice between Hybrid and GpuSync |
//!
//! Applications are little per-rank programs ([`program::AppOp`]) executed
//! by the deterministic event loop in [`cluster::Cluster`]. Each rank's
//! host thread is a *sequential* resource — kernel launches, MPI calls and
//! scheduler work all advance the same virtual CPU clock, which is what
//! makes launch overhead non-hidable and reproduces the paper's bottleneck.

pub mod breakdown;
pub mod cluster;
pub mod error;
pub mod lifecycle;
pub mod message;
pub mod program;
pub mod registry;
pub mod scheme;
pub mod sendrecv;

pub use breakdown::Breakdown;
pub use cluster::{Cluster, ClusterBuilder, RankId, RndvProtocol, RunReport};
pub use error::TransferError;
pub use lifecycle::{LifecycleEvent, RequestLifecycle, RequeueLadder, Role, Stage};
pub use program::{AppOp, BufId, BufInit, Program, TypeSlot};
pub use registry::{SchemeDescriptor, SchemeRegistry};
pub use scheme::{NaiveFlavor, SchemeKind};
