//! Wire messages.
//!
//! Everything that crosses a link is a [`WireMsg`]: eager payloads,
//! rendezvous control packets (RTS/CTS), and RDMA payload deliveries.
//! Payloads carry real bytes in `DataMode::Full` runs so end-to-end
//! correctness is testable; in `ModelOnly` runs they are empty.

use crate::cluster::RankId;
use crate::sendrecv::{RecvId, SendId};

/// Message kinds. `Eager` and `Rts` participate in tag matching; `Cts` and
/// `RdmaData` are addressed to an existing operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireKind {
    /// Small-message eager data: packed payload inline.
    Eager { send_id: SendId, packed_bytes: u64 },
    /// Rendezvous Request-To-Send. In the RPUT protocol the paper's design
    /// sends this *before* packing completes, overlapping the handshake
    /// with the packing kernel (§IV-B1). For intra-node peers under the
    /// fusion scheme, `ipc_origin` carries the sender's device address so
    /// the receiver can fuse a zero-copy DirectIPC request instead of
    /// answering with a CTS.
    Rts {
        send_id: SendId,
        packed_bytes: u64,
        ipc_origin: Option<u64>,
        /// RGET protocol: the data is already packed and the receiver
        /// should pull it with an RDMA READ (§IV-B1). Under RPUT this is
        /// false and the receiver answers with a CTS instead.
        rget: bool,
    },
    /// Clear-To-Send: the receiver's staging buffer is ready.
    Cts {
        send_id: SendId,
        recv_id: RecvId,
        staging_addr: u64,
        /// Staging is in host memory (hybrid CPU path / naive libraries).
        host_staging: bool,
    },
    /// RDMA WRITE payload landing in the receiver's staging buffer.
    RdmaData { send_id: SendId, recv_id: RecvId },
    /// RGET: the receiver's RDMA READ request arriving at the sender's
    /// NIC. Served by hardware — no sender CPU involvement.
    RdmaReadReq { send_id: SendId, recv_id: RecvId },
    /// Completion notification back to the sender: the receiver's fused
    /// DirectIPC kernel finished, or its RGET read drained the buffer.
    Fin { send_id: SendId },
}

/// A message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMsg {
    pub src: RankId,
    pub dst: RankId,
    /// MPI tag; meaningful for `Eager` and `Rts` (matching), zero otherwise.
    pub tag: u32,
    pub kind: WireKind,
    /// Real payload bytes (empty in model-only mode and for control
    /// packets).
    pub payload: Vec<u8>,
}

impl WireMsg {
    /// Is this a message that participates in MPI tag matching?
    pub fn is_matchable(&self) -> bool {
        matches!(self.kind, WireKind::Eager { .. } | WireKind::Rts { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matchable_kinds() {
        let base = WireMsg {
            src: RankId(0),
            dst: RankId(1),
            tag: 3,
            kind: WireKind::Rts {
                send_id: SendId(0),
                packed_bytes: 128,
                ipc_origin: None,
                rget: false,
            },
            payload: Vec::new(),
        };
        assert!(base.is_matchable());
        let cts = WireMsg {
            kind: WireKind::Cts {
                send_id: SendId(0),
                recv_id: RecvId(0),
                staging_addr: 0,
                host_staging: false,
            },
            ..base.clone()
        };
        assert!(!cts.is_matchable());
    }
}
