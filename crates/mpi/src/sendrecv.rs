//! Send/receive operation state.
//!
//! Each operation's protocol progress lives in a
//! [`RequestLifecycle`](crate::lifecycle::RequestLifecycle) — see that
//! module for the stage diagram. A send walks: pack initiated → (RTS out,
//! CTS in, pack complete) → payload issued → locally complete. A receive
//! walks: posted → matched/CTS sent → data arrived → unpack initiated →
//! complete. The *order* of the middle steps varies by scheme — the
//! proposed design's whole point is that the RTS/CTS handshake runs
//! concurrently with packing.

use fusedpack_core::Uid;
use fusedpack_datatype::Layout;
use fusedpack_gpu::DevPtr;
use std::sync::Arc;

use crate::cluster::RankId;
use crate::lifecycle::RequestLifecycle;

pub use crate::lifecycle::PackState;

/// Per-rank send-operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SendId(pub usize);

/// Per-rank receive-operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecvId(pub usize);

/// Where a packed staging buffer lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StagingLoc {
    /// Not yet allocated.
    None,
    /// Device memory (kernel pack/unpack paths, fusion).
    Gpu(DevPtr),
    /// Host memory (hybrid CPU path, naive production libraries).
    Host(DevPtr),
    /// The user buffer itself, on the device: contiguous layouts need no
    /// packing and are sent/received in place.
    UserGpu(DevPtr),
}

impl StagingLoc {
    pub fn addr(&self) -> u64 {
        match self {
            StagingLoc::Gpu(p) | StagingLoc::Host(p) | StagingLoc::UserGpu(p) => p.addr,
            StagingLoc::None => panic!("staging not allocated"),
        }
    }

    pub fn is_host(&self) -> bool {
        matches!(self, StagingLoc::Host(_))
    }

    pub fn is_some(&self) -> bool {
        !matches!(self, StagingLoc::None)
    }
}

/// CTS information remembered by the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtsInfo {
    pub recv_id: RecvId,
    pub staging_addr: u64,
    pub host_staging: bool,
}

/// One in-flight send.
#[derive(Debug, Clone)]
pub struct SendOp {
    pub id: SendId,
    pub dst: RankId,
    pub tag: u32,
    pub user_buf: DevPtr,
    pub layout: Arc<Layout>,
    pub count: u64,
    pub packed_bytes: u64,
    pub blocks: u64,
    pub eager: bool,
    pub staging: StagingLoc,
    /// Protocol + packing progress (replaces the old `pack`/`rts_sent`/
    /// `data_issued`/`completed` flag scatter).
    pub lifecycle: RequestLifecycle,
    pub cts: Option<CtsInfo>,
    pub fusion_uid: Option<Uid>,
}

/// One in-flight receive.
#[derive(Debug, Clone)]
pub struct RecvOp {
    pub id: RecvId,
    pub src: RankId,
    pub tag: u32,
    pub user_buf: DevPtr,
    pub layout: Arc<Layout>,
    pub count: u64,
    pub packed_bytes: u64,
    pub blocks: u64,
    pub staging: StagingLoc,
    /// Protocol + unpacking progress (replaces the old `state`/`unpack`
    /// enum pair).
    pub lifecycle: RequestLifecycle,
    pub fusion_uid: Option<Uid>,
    /// Set when this receive is served by a fused DirectIPC request; the
    /// receiver must notify this send with a `Fin` on completion.
    pub ipc_send_id: Option<SendId>,
}

impl SendOp {
    /// Ready to put the payload on the wire?
    pub fn ready_to_issue(&self) -> bool {
        self.lifecycle.is_unmatched()
            && self.lifecycle.pack() == PackState::Done
            && (self.eager || self.cts.is_some())
    }
}

impl RecvOp {
    pub fn is_complete(&self) -> bool {
        self.lifecycle.is_done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::LifecycleEvent;
    use fusedpack_datatype::TypeBuilder;

    fn send() -> SendOp {
        SendOp {
            id: SendId(0),
            dst: RankId(1),
            tag: 0,
            user_buf: DevPtr { addr: 0, len: 64 },
            layout: Arc::new(Layout::of(&TypeBuilder::int())),
            count: 1,
            packed_bytes: 4,
            blocks: 1,
            eager: false,
            staging: StagingLoc::None,
            lifecycle: RequestLifecycle::send(),
            cts: None,
            fusion_uid: None,
        }
    }

    #[test]
    fn rendezvous_needs_pack_and_cts() {
        let mut s = send();
        assert!(!s.ready_to_issue());
        s.lifecycle.apply(LifecycleEvent::PackFinished);
        assert!(!s.ready_to_issue(), "no CTS yet");
        s.cts = Some(CtsInfo {
            recv_id: RecvId(0),
            staging_addr: 0,
            host_staging: false,
        });
        assert!(s.ready_to_issue());
        s.lifecycle.apply(LifecycleEvent::Issued);
        assert!(!s.ready_to_issue(), "never issue twice");
    }

    #[test]
    fn eager_needs_only_pack() {
        let mut s = send();
        s.eager = true;
        s.lifecycle.apply(LifecycleEvent::PackFinished);
        assert!(s.ready_to_issue());
    }

    #[test]
    fn staging_loc_accessors() {
        let g = StagingLoc::Gpu(DevPtr { addr: 42, len: 8 });
        assert_eq!(g.addr(), 42);
        assert!(!g.is_host());
        assert!(g.is_some());
        let h = StagingLoc::Host(DevPtr { addr: 7, len: 8 });
        assert!(h.is_host());
        assert!(!StagingLoc::None.is_some());
    }

    #[test]
    #[should_panic(expected = "staging not allocated")]
    fn none_staging_has_no_addr() {
        StagingLoc::None.addr();
    }
}
