//! Time-breakdown accounting — the five buckets of the paper's Fig. 11.
//!
//! 1. **(Un)Pack** — device (or GDRCopy CPU) time spent actually moving
//!    non-contiguous bytes;
//! 2. **Launching** — CPU driver time spent launching kernels / issuing
//!    async copies;
//! 3. **Scheduling** — GPU-Async's event records and the fusion scheduler's
//!    enqueue/complete work;
//! 4. **Sync.** — CPU↔GPU completion detection: blocked
//!    `cudaStreamSynchronize` waits, `cudaEventQuery` polls, fusion status
//!    queries;
//! 5. **Comm.** — *observed* communication: time a rank spends blocked with
//!    no local kernel or CPU work outstanding, waiting on the wire.

use fusedpack_sim::Duration;
use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Accumulated per-rank cost buckets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breakdown {
    pub pack: Duration,
    pub launch: Duration,
    pub scheduling: Duration,
    pub sync: Duration,
    pub comm: Duration,
}

impl Breakdown {
    pub fn total(&self) -> Duration {
        self.pack + self.launch + self.scheduling + self.sync + self.comm
    }

    /// Fraction of the total in each bucket, in Fig. 11 order.
    pub fn fractions(&self) -> [f64; 5] {
        let total = self.total().as_nanos() as f64;
        if total == 0.0 {
            return [0.0; 5];
        }
        [
            self.pack.as_nanos() as f64 / total,
            self.launch.as_nanos() as f64 / total,
            self.scheduling.as_nanos() as f64 / total,
            self.sync.as_nanos() as f64 / total,
            self.comm.as_nanos() as f64 / total,
        ]
    }

    /// Bucket labels in Fig. 11 order.
    pub const LABELS: [&'static str; 5] = ["(Un)Pack", "Launching", "Scheduling", "Sync.", "Comm."];

    /// Values in Fig. 11 order.
    pub fn values(&self) -> [Duration; 5] {
        [
            self.pack,
            self.launch,
            self.scheduling,
            self.sync,
            self.comm,
        ]
    }
}

impl Breakdown {
    /// Difference of two snapshots (`self` taken after `earlier`).
    pub fn delta_since(&self, earlier: &Breakdown) -> Breakdown {
        Breakdown {
            pack: self.pack.saturating_sub(earlier.pack),
            launch: self.launch.saturating_sub(earlier.launch),
            scheduling: self.scheduling.saturating_sub(earlier.scheduling),
            sync: self.sync.saturating_sub(earlier.sync),
            comm: self.comm.saturating_sub(earlier.comm),
        }
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Breakdown) {
        self.pack += rhs.pack;
        self.launch += rhs.launch;
        self.scheduling += rhs.scheduling;
        self.sync += rhs.sync;
        self.comm += rhs.comm;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let b = Breakdown {
            pack: Duration(100),
            launch: Duration(300),
            scheduling: Duration(50),
            sync: Duration(250),
            comm: Duration(300),
        };
        assert_eq!(b.total(), Duration(1000));
        let f = b.fractions();
        assert!((f[0] - 0.1).abs() < 1e-12);
        assert!((f[1] - 0.3).abs() < 1e-12);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        assert_eq!(Breakdown::default().fractions(), [0.0; 5]);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Breakdown {
            pack: Duration(10),
            ..Default::default()
        };
        a += Breakdown {
            pack: Duration(5),
            comm: Duration(7),
            ..Default::default()
        };
        assert_eq!(a.pack, Duration(15));
        assert_eq!(a.comm, Duration(7));
    }

    #[test]
    fn labels_align_with_values() {
        assert_eq!(Breakdown::LABELS.len(), Breakdown::default().values().len());
    }
}
