//! End-to-end exchange tests: every scheme must move the right bytes, and
//! the relative performance of the schemes must match the paper's ordering.

use fusedpack_datatype::{Layout, TypeBuilder, TypeDesc};
use fusedpack_mpi::program::BufInit;
use fusedpack_mpi::{AppOp, BufId, ClusterBuilder, Program, RankId, SchemeKind, TypeSlot};
use fusedpack_net::Platform;
use fusedpack_sim::Pcg32;
use std::sync::Arc;

/// Build a symmetric two-rank halo exchange: each rank posts `n_msgs`
/// receives then `n_msgs` sends of `count` elements of `desc`, then waits.
/// Returns (program for rank0, program for rank1, send buffer ids, recv
/// buffer ids).
fn exchange_programs(
    desc: &Arc<TypeDesc>,
    count: u64,
    n_msgs: usize,
    laps: usize,
) -> (Program, Program, Vec<BufId>, Vec<BufId>) {
    let layout = Layout::of(desc);
    let buf_len = layout.footprint(count).max(1);

    let build = |seed_base: u64, peer: RankId| {
        let mut p = Program::new();
        let sbufs: Vec<BufId> = (0..n_msgs)
            .map(|i| p.buffer(buf_len, BufInit::Random(seed_base + i as u64)))
            .collect();
        let rbufs: Vec<BufId> = (0..n_msgs)
            .map(|_| p.buffer(buf_len, BufInit::Zero))
            .collect();
        p.push(AppOp::Commit {
            slot: TypeSlot(0),
            desc: desc.clone(),
        });
        for _ in 0..laps {
            p.push(AppOp::ResetTimer);
            for (i, &rbuf) in rbufs.iter().enumerate() {
                p.push(AppOp::Irecv {
                    buf: rbuf,
                    ty: TypeSlot(0),
                    count,
                    src: peer,
                    tag: i as u32,
                });
            }
            for (i, &sbuf) in sbufs.iter().enumerate() {
                p.push(AppOp::Isend {
                    buf: sbuf,
                    ty: TypeSlot(0),
                    count,
                    dst: peer,
                    tag: i as u32,
                });
            }
            p.push(AppOp::Waitall);
            p.push(AppOp::RecordLap);
        }
        (p, sbufs, rbufs)
    };

    let (p0, s0, _r0) = build(100, RankId(1));
    let (p1, _s1, r1) = build(200, RankId(0));
    (p0, p1, s0, r1)
}

/// Expected contents of a sender buffer initialized with
/// `BufInit::Random(seed)` on rank `rank_idx`.
fn expected_buffer(seed: u64, rank_idx: u64, len: u64) -> Vec<u8> {
    let mut rng = Pcg32::new(seed, rank_idx);
    let mut bytes = vec![0u8; len as usize];
    rng.fill_bytes(&mut bytes);
    bytes
}

/// Run a two-rank exchange and assert rank1 received rank0's data in every
/// segment the layout touches.
fn run_and_verify(
    platform: Platform,
    scheme: SchemeKind,
    desc: Arc<TypeDesc>,
    count: u64,
    n_msgs: usize,
) -> fusedpack_mpi::cluster::RunReport {
    let layout = Layout::of(&desc);
    let buf_len = layout.footprint(count).max(1);
    let (p0, p1, _s0, r1) = exchange_programs(&desc, count, n_msgs, 1);
    let mut cluster = ClusterBuilder::new(platform, scheme)
        .add_rank(0, p0)
        .add_rank(1, p1)
        .build();
    let report = cluster.run();

    for (i, &rbuf) in r1.iter().enumerate() {
        let got = cluster.rank_buffer(RankId(1), rbuf);
        let want = expected_buffer(100 + i as u64, 0, buf_len);
        for (addr, len) in layout.absolute_segments(0, count) {
            let (a, b) = (addr as usize, (addr + len) as usize);
            assert_eq!(
                &got[a..b],
                &want[a..b],
                "msg {i}: segment at {addr} mismatched"
            );
        }
    }
    report
}

fn sparse_type() -> Arc<TypeDesc> {
    // specfem3D-like: many small indexed blocks of floats.
    let blocks: Vec<(u64, u64)> = (0..200).map(|i| (i * 5, 2)).collect();
    TypeBuilder::indexed(&blocks, TypeBuilder::float())
}

fn dense_type() -> Arc<TypeDesc> {
    // NAS_MG-like: vector with fat blocks.
    TypeBuilder::vector(16, 128, 192, TypeBuilder::double())
}

fn all_schemes() -> Vec<SchemeKind> {
    // Every registered design: the registry is the single source of truth
    // for what exists, so new schemes are exercised here automatically.
    fusedpack_mpi::SchemeRegistry::global()
        .all()
        .iter()
        .map(|d| d.make())
        .collect()
}

#[test]
fn every_scheme_moves_correct_bytes_sparse_lassen() {
    for scheme in all_schemes() {
        run_and_verify(Platform::lassen(), scheme, sparse_type(), 2, 4);
    }
}

#[test]
fn every_scheme_moves_correct_bytes_dense_abci() {
    for scheme in all_schemes() {
        run_and_verify(Platform::abci(), scheme, dense_type(), 4, 4);
    }
}

#[test]
fn eager_path_small_messages() {
    // One tiny block: packed size far below the 8 KB eager limit.
    let desc = TypeBuilder::indexed(&[(0, 4), (8, 4)], TypeBuilder::float());
    for scheme in all_schemes() {
        run_and_verify(Platform::lassen(), scheme, desc.clone(), 1, 3);
    }
}

#[test]
fn unexpected_messages_are_matched_late() {
    // Rank 1 sends *before* posting its receives, so rank 0's RTS/eager
    // messages race ahead and land in the unexpected queue.
    let desc = sparse_type();
    let layout = Layout::of(&desc);
    let count = 2u64;
    let n = 3usize;
    let buf_len = layout.footprint(count).max(1);

    let mut p0 = Program::new();
    let s0: Vec<BufId> = (0..n)
        .map(|i| p0.buffer(buf_len, BufInit::Random(500 + i as u64)))
        .collect();
    let r0: Vec<BufId> = (0..n).map(|_| p0.buffer(buf_len, BufInit::Zero)).collect();
    p0.push(AppOp::Commit {
        slot: TypeSlot(0),
        desc: desc.clone(),
    });
    // Sends first!
    for (i, &b) in s0.iter().enumerate() {
        p0.push(AppOp::Isend {
            buf: b,
            ty: TypeSlot(0),
            count,
            dst: RankId(1),
            tag: i as u32,
        });
    }
    for (i, &b) in r0.iter().enumerate() {
        p0.push(AppOp::Irecv {
            buf: b,
            ty: TypeSlot(0),
            count,
            src: RankId(1),
            tag: i as u32,
        });
    }
    p0.push(AppOp::Waitall);

    let mut p1 = Program::new();
    let s1: Vec<BufId> = (0..n)
        .map(|i| p1.buffer(buf_len, BufInit::Random(600 + i as u64)))
        .collect();
    let r1: Vec<BufId> = (0..n).map(|_| p1.buffer(buf_len, BufInit::Zero)).collect();
    p1.push(AppOp::Commit {
        slot: TypeSlot(0),
        desc: desc.clone(),
    });
    for (i, &b) in s1.iter().enumerate() {
        p1.push(AppOp::Isend {
            buf: b,
            ty: TypeSlot(0),
            count,
            dst: RankId(0),
            tag: i as u32,
        });
    }
    for (i, &b) in r1.iter().enumerate() {
        p1.push(AppOp::Irecv {
            buf: b,
            ty: TypeSlot(0),
            count,
            src: RankId(0),
            tag: i as u32,
        });
    }
    p1.push(AppOp::Waitall);

    for scheme in [SchemeKind::GpuSync, SchemeKind::fusion_default()] {
        let mut cluster = ClusterBuilder::new(Platform::lassen(), scheme)
            .add_rank(0, p0.clone())
            .add_rank(1, p1.clone())
            .build();
        cluster.run();
        for (i, &rbuf) in r1.iter().enumerate() {
            let got = cluster.rank_buffer(RankId(1), rbuf);
            let want = expected_buffer(500 + i as u64, 0, buf_len);
            for (addr, len) in layout.absolute_segments(0, count) {
                let (a, b) = (addr as usize, (addr + len) as usize);
                assert_eq!(&got[a..b], &want[a..b], "msg {i} segment {addr}");
            }
        }
    }
}

#[test]
fn fusion_launches_far_fewer_kernels() {
    let n_msgs = 16;
    let report_sync = run_and_verify(
        Platform::lassen(),
        SchemeKind::GpuSync,
        sparse_type(),
        2,
        n_msgs,
    );
    let report_fusion = run_and_verify(
        Platform::lassen(),
        SchemeKind::fusion_default(),
        sparse_type(),
        2,
        n_msgs,
    );
    // GPU-Sync: one kernel per pack + one per unpack = 32 per rank.
    assert_eq!(report_sync.kernels_launched[0], 2 * n_msgs as u64);
    // Fusion: a handful of fused launches.
    assert!(
        report_fusion.kernels_launched[0] <= 6,
        "expected few fused launches, got {}",
        report_fusion.kernels_launched[0]
    );
    let stats = report_fusion.sched_stats[0].expect("fusion stats");
    assert_eq!(stats.enqueued, 2 * n_msgs as u64);
    assert_eq!(stats.requests_fused, stats.enqueued);
    assert!(stats.fusion_degree() > 4.0);
}

#[test]
fn fusion_beats_gpu_sync_on_bulk_sparse() {
    let fusion = run_and_verify(
        Platform::lassen(),
        SchemeKind::fusion_default(),
        sparse_type(),
        4,
        16,
    );
    let sync = run_and_verify(
        Platform::lassen(),
        SchemeKind::GpuSync,
        sparse_type(),
        4,
        16,
    );
    let naive = run_and_verify(
        Platform::lassen(),
        SchemeKind::NaiveCopy(fusedpack_mpi::scheme::NaiveFlavor::SpectrumMpi),
        sparse_type(),
        4,
        16,
    );
    let f = fusion.final_lap();
    let s = sync.final_lap();
    let n = naive.final_lap();
    assert!(f < s, "fusion {f} should beat gpu-sync {s}");
    assert!(s < n, "gpu-sync {s} should beat naive {n}");
    assert!(
        n.as_nanos() > 10 * f.as_nanos(),
        "naive {n} should be an order of magnitude slower than fusion {f}"
    );
}

#[test]
fn second_lap_is_not_slower_with_warm_caches() {
    let desc = sparse_type();
    let (p0, p1, _, _) = exchange_programs(&desc, 2, 8, 3);
    let mut cluster = ClusterBuilder::new(Platform::lassen(), SchemeKind::fusion_default())
        .add_rank(0, p0)
        .add_rank(1, p1)
        .build();
    let report = cluster.run();
    assert_eq!(report.lap_count(), 3);
    let first = report.lap_makespan(0);
    let last = report.lap_makespan(2);
    assert!(
        last <= first,
        "warm lap {last} should not exceed cold lap {first}"
    );
}

#[test]
fn breakdown_buckets_are_populated() {
    let report = run_and_verify(Platform::abci(), SchemeKind::GpuSync, sparse_type(), 2, 8);
    let b = report.breakdowns[0];
    assert!(b.launch.as_nanos() > 0, "launch bucket empty");
    assert!(b.pack.as_nanos() > 0, "pack bucket empty");
    assert!(b.sync.as_nanos() > 0, "sync bucket empty");

    let report = run_and_verify(
        Platform::abci(),
        SchemeKind::fusion_default(),
        sparse_type(),
        2,
        8,
    );
    let f = report.breakdowns[0];
    assert!(
        f.scheduling.as_nanos() > 0,
        "fusion scheduling bucket empty"
    );
    assert!(
        f.launch < b.launch,
        "fusion launch {:?} must undercut gpu-sync {:?}",
        f.launch,
        b.launch
    );
    assert!(
        f.sync < b.sync,
        "fusion sync {:?} must undercut gpu-sync {:?}",
        f.sync,
        b.sync
    );
}

#[test]
fn deterministic_replay() {
    let run = || {
        run_and_verify(
            Platform::lassen(),
            SchemeKind::fusion_default(),
            sparse_type(),
            2,
            8,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.final_lap(), b.final_lap());
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.events_processed, b.events_processed);
}

#[test]
fn staging_pool_recycles_payload_buffers() {
    let desc = sparse_type();
    // Multi-lap so retired payload buffers get a chance to be reused.
    let (p0, p1, _, _) = exchange_programs(&desc, 2, 4, 3);
    let mut cluster = ClusterBuilder::new(Platform::lassen(), SchemeKind::fusion_default())
        .add_rank(0, p0)
        .add_rank(1, p1)
        .build();
    let report = cluster.run();
    let pool = cluster.staging_pool_stats();
    assert!(pool.released > 0, "payload buffers should be recycled");
    assert!(
        pool.hits > 0,
        "steady-state laps should reuse pooled buffers, got {pool:?}"
    );
    // No past-event clamps in a healthy run.
    assert_eq!(report.event_clamps.count, 0);
    assert_eq!(report.event_clamps, fusedpack_sim::ClampStats::default());
}

#[test]
fn empty_waitall_returns_immediately() {
    let mut p = Program::new();
    let _ = p.buffer(64, BufInit::Zero);
    p.push(AppOp::ResetTimer);
    p.push(AppOp::Waitall);
    p.push(AppOp::RecordLap);
    let mut cluster = ClusterBuilder::new(Platform::lassen(), SchemeKind::fusion_default())
        .add_rank(0, p)
        .build();
    let report = cluster.run();
    // Just the Waitall bookkeeping cost.
    assert!(report.lap_makespan(0).as_micros_f64() < 1.0);
}

#[test]
fn mixed_datatypes_in_one_epoch() {
    // Two different layouts exchanged in the same Waitall epoch: a sparse
    // indexed type and a dense vector, both directions, under fusion.
    let sparse = sparse_type();
    let dense = dense_type();
    let l_sparse = Layout::of(&sparse);
    let l_dense = Layout::of(&dense);
    let count = 2u64;
    let len_sparse = l_sparse.footprint(count).max(1);
    let len_dense = l_dense.footprint(count).max(1);

    let build = |seed: u64, peer: RankId| {
        let mut p = Program::new();
        let s0 = p.buffer(len_sparse, BufInit::Random(seed));
        let s1 = p.buffer(len_dense, BufInit::Random(seed + 1));
        let r0 = p.buffer(len_sparse, BufInit::Zero);
        let r1 = p.buffer(len_dense, BufInit::Zero);
        p.push(AppOp::Commit {
            slot: TypeSlot(0),
            desc: sparse.clone(),
        });
        p.push(AppOp::Commit {
            slot: TypeSlot(1),
            desc: dense.clone(),
        });
        p.push(AppOp::Irecv {
            buf: r0,
            ty: TypeSlot(0),
            count,
            src: peer,
            tag: 0,
        });
        p.push(AppOp::Irecv {
            buf: r1,
            ty: TypeSlot(1),
            count,
            src: peer,
            tag: 1,
        });
        p.push(AppOp::Isend {
            buf: s0,
            ty: TypeSlot(0),
            count,
            dst: peer,
            tag: 0,
        });
        p.push(AppOp::Isend {
            buf: s1,
            ty: TypeSlot(1),
            count,
            dst: peer,
            tag: 1,
        });
        p.push(AppOp::Waitall);
        (p, [r0, r1])
    };
    let (p0, _) = build(300, RankId(1));
    let (p1, r1bufs) = build(400, RankId(0));
    let mut cluster = ClusterBuilder::new(Platform::lassen(), SchemeKind::fusion_default())
        .add_rank(0, p0)
        .add_rank(1, p1)
        .build();
    cluster.run();

    for (i, (layout, len)) in [(l_sparse, len_sparse), (l_dense, len_dense)]
        .into_iter()
        .enumerate()
    {
        let got = cluster.rank_buffer(RankId(1), r1bufs[i]);
        let want = expected_buffer(300 + i as u64, 0, len);
        for (addr, seg_len) in layout.absolute_segments(0, count) {
            let (a, b) = (addr as usize, (addr + seg_len) as usize);
            assert_eq!(&got[a..b], &want[a..b], "type {i} segment {addr}");
        }
    }
}

#[test]
fn contiguous_sends_launch_no_kernels() {
    // A fully contiguous type goes over the wire straight from the user
    // buffer — zero pack/unpack kernels under any scheme.
    let desc = TypeBuilder::contiguous(4096, TypeBuilder::byte());
    for scheme in [SchemeKind::GpuSync, SchemeKind::fusion_default()] {
        let report = run_and_verify(Platform::lassen(), scheme, desc.clone(), 1, 4);
        let total: u64 = report.kernels_launched.iter().sum();
        assert_eq!(total, 0, "contiguous transfers must not launch kernels");
    }
}

#[test]
fn contiguous_is_faster_than_equivalent_noncontiguous() {
    let contig = TypeBuilder::contiguous(8192, TypeBuilder::byte());
    // Same bytes, 256 blocks.
    let strided = TypeBuilder::vector(256, 32, 48, TypeBuilder::byte());
    let fast = run_and_verify(Platform::lassen(), SchemeKind::GpuSync, contig, 1, 8);
    let slow = run_and_verify(Platform::lassen(), SchemeKind::GpuSync, strided, 1, 8);
    assert!(fast.final_lap() < slow.final_lap());
}
