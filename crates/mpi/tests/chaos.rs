//! Fault-injection (chaos) tests: under any seeded fault plan every
//! exchange must complete with the same bytes as a fault-free run — never
//! panic, never deadlock — and a plan that never fires must leave the run
//! bit-identical to one with no plan at all.

use fusedpack_core::FusionConfig;
use fusedpack_datatype::{Layout, TypeBuilder, TypeDesc};
use fusedpack_mpi::program::BufInit;
use fusedpack_mpi::{
    AppOp, BufId, ClusterBuilder, Program, RankId, RunReport, SchemeKind, TypeSlot,
};
use fusedpack_net::{Hierarchy, Platform, TopologyHandle};
use fusedpack_sim::{FaultPlan, FaultSite, FaultSpec, Pcg32};
use std::sync::Arc;

fn sparse_type(points: u64) -> Arc<TypeDesc> {
    let disps: Vec<u64> = (0..points).map(|i| i * 3).collect();
    TypeBuilder::indexed_block(&disps, 1, TypeBuilder::float())
}

/// Two ranks exchanging `n` rendezvous-sized messages each way, optionally
/// under a fault plan. Returns the report and both ranks' receive buffers.
fn run_chaos_pair(
    scheme: SchemeKind,
    desc: &Arc<TypeDesc>,
    n: usize,
    same_node: bool,
    plan: Option<FaultPlan>,
) -> (RunReport, Vec<Vec<u8>>, u64) {
    let layout = Layout::of(desc);
    let count = 2u64;
    let len = layout.footprint(count).max(1);

    let build = |seed: u64, peer: RankId| {
        let mut p = Program::new();
        let sbufs: Vec<BufId> = (0..n)
            .map(|i| p.buffer(len, BufInit::Random(seed + i as u64)))
            .collect();
        let rbufs: Vec<BufId> = (0..n).map(|_| p.buffer(len, BufInit::Zero)).collect();
        p.push(AppOp::Commit {
            slot: TypeSlot(0),
            desc: desc.clone(),
        });
        p.push(AppOp::ResetTimer);
        for (i, &b) in rbufs.iter().enumerate() {
            p.push(AppOp::Irecv {
                buf: b,
                ty: TypeSlot(0),
                count,
                src: peer,
                tag: i as u32,
            });
        }
        for (i, &b) in sbufs.iter().enumerate() {
            p.push(AppOp::Isend {
                buf: b,
                ty: TypeSlot(0),
                count,
                dst: peer,
                tag: i as u32,
            });
        }
        p.push(AppOp::Waitall);
        p.push(AppOp::RecordLap);
        let _ = sbufs;
        (p, rbufs)
    };

    let (p0, _) = build(900, RankId(1));
    let (p1, rbufs1) = build(1900, RankId(0));
    let mut builder = ClusterBuilder::new(Platform::lassen(), scheme)
        .add_rank(0, p0)
        .add_rank(if same_node { 0 } else { 1 }, p1);
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    let mut cluster = builder.build();
    let report = cluster.run();
    let received: Vec<Vec<u8>> = rbufs1
        .iter()
        .map(|&b| cluster.rank_buffer(RankId(1), b))
        .collect();
    (report, received, len)
}

fn verify_received(desc: &Arc<TypeDesc>, received: &[Vec<u8>], len: u64) {
    let layout = Layout::of(desc);
    for (i, got) in received.iter().enumerate() {
        let mut want = vec![0u8; len as usize];
        Pcg32::new(900 + i as u64, 0).fill_bytes(&mut want);
        for (addr, seg_len) in layout.absolute_segments(0, 2) {
            let (a, b) = (addr as usize, (addr + seg_len) as usize);
            assert_eq!(&got[a..b], &want[a..b], "msg {i} segment {addr}");
        }
    }
}

/// Four ranks, one per node, exchanging `n` messages around a ring over a
/// routed topology — the smallest shape where hop faults, reroutes, and
/// multi-shard execution all engage at once. Returns the report and every
/// rank's receive buffers.
fn run_chaos_ring(
    desc: &Arc<TypeDesc>,
    n: usize,
    topo: TopologyHandle,
    plan: Option<FaultPlan>,
    shards: u32,
) -> (RunReport, Vec<Vec<Vec<u8>>>) {
    const RANKS: u32 = 4;
    let layout = Layout::of(desc);
    let count = 2u64;
    let len = layout.footprint(count).max(1);

    let mut builder = ClusterBuilder::new(Platform::lassen(), SchemeKind::fusion_default())
        .topology(topo)
        .shards(shards);
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    let mut rbufs = Vec::new();
    for r in 0..RANKS {
        let next = (r + 1) % RANKS;
        let prev = (r + RANKS - 1) % RANKS;
        let mut p = Program::new();
        let sbufs: Vec<BufId> = (0..n)
            .map(|i| p.buffer(len, BufInit::Random(100 * r as u64 + i as u64)))
            .collect();
        let rb: Vec<BufId> = (0..n).map(|_| p.buffer(len, BufInit::Zero)).collect();
        p.push(AppOp::Commit {
            slot: TypeSlot(0),
            desc: desc.clone(),
        });
        p.push(AppOp::ResetTimer);
        for (i, &b) in rb.iter().enumerate() {
            p.push(AppOp::Irecv {
                buf: b,
                ty: TypeSlot(0),
                count,
                src: RankId(prev),
                tag: i as u32,
            });
        }
        for (i, &b) in sbufs.iter().enumerate() {
            p.push(AppOp::Isend {
                buf: b,
                ty: TypeSlot(0),
                count,
                dst: RankId(next),
                tag: i as u32,
            });
        }
        p.push(AppOp::Waitall);
        p.push(AppOp::RecordLap);
        rbufs.push(rb);
        builder = builder.add_rank(r, p);
    }
    let mut cluster = builder.build();
    let report = cluster.run();
    let received: Vec<Vec<Vec<u8>>> = rbufs
        .iter()
        .enumerate()
        .map(|(r, bufs)| {
            bufs.iter()
                .map(|&b| cluster.rank_buffer(RankId(r as u32), b))
                .collect()
        })
        .collect();
    (report, received)
}

#[test]
fn all_zero_plan_is_bit_identical_to_no_plan() {
    // The zero-cost guarantee: an armed plan whose every site has
    // probability zero must not perturb a single timestamp or byte.
    let desc = sparse_type(700);
    let (base, base_rx, _) = run_chaos_pair(SchemeKind::fusion_default(), &desc, 6, false, None);
    let (zeroed, zeroed_rx, len) = run_chaos_pair(
        SchemeKind::fusion_default(),
        &desc,
        6,
        false,
        Some(FaultPlan::new(42)),
    );
    assert_eq!(base.laps, zeroed.laps, "lap times must be bit-identical");
    assert_eq!(base.end_time, zeroed.end_time);
    assert_eq!(base.events_processed, zeroed.events_processed);
    assert_eq!(base_rx, zeroed_rx, "received bytes must be bit-identical");
    assert!(
        zeroed.fault_summary.is_clean(),
        "{:?}",
        zeroed.fault_summary
    );
    verify_received(&desc, &zeroed_rx, len);
}

#[test]
fn every_fault_site_preserves_transferred_bytes() {
    // One site at a time, at a high rate: the exchange must complete with
    // exactly the fault-free bytes, and the site must actually fire.
    // Rendezvous-sized (12 KB packed > the 8 KB eager limit) so the
    // NIC-completion sites on the RPUT path are reachable.
    let desc = sparse_type(1500);
    for &site in &FaultSite::ALL {
        // Fabric sites live on the per-hop topology path; the flat wire
        // model has no hops to flap. They are exercised by the fabric tests
        // below and the topology chaos grid.
        if site.is_fabric() {
            continue;
        }
        // DirectIPC mapping only exists intra-node; everything else is
        // exercised on the inter-node wire.
        let same_node = site == FaultSite::IpcMapFail;
        let plan = FaultPlan::new(7).with(site, FaultSpec::with_probability(0.5));
        let (report, received, len) = run_chaos_pair(
            SchemeKind::fusion_default(),
            &desc,
            6,
            same_node,
            Some(plan),
        );
        assert!(
            report.fault_summary.injected > 0,
            "{site}: plan never fired — the hook is dead ({:?})",
            report.fault_summary
        );
        verify_received(&desc, &received, len);
        assert_eq!(report.lap_count(), 1, "{site}: both ranks recorded a lap");
    }
}

#[test]
fn chaos_is_deterministic_for_a_fixed_seed() {
    let desc = sparse_type(700);
    let plan = || FaultPlan::uniform(1234, 0.08);
    let (a, a_rx, _) = run_chaos_pair(SchemeKind::fusion_default(), &desc, 6, false, Some(plan()));
    let (b, b_rx, _) = run_chaos_pair(SchemeKind::fusion_default(), &desc, 6, false, Some(plan()));
    assert_eq!(a.laps, b.laps);
    assert_eq!(a.end_time, b.end_time);
    assert_eq!(a.fault_summary, b.fault_summary);
    assert_eq!(a_rx, b_rx);
}

#[test]
fn uniform_chaos_across_schemes_never_breaks_an_exchange() {
    let desc = sparse_type(700);
    for scheme in [SchemeKind::fusion_default(), SchemeKind::fusion_adaptive()] {
        for same_node in [false, true] {
            let plan = FaultPlan::uniform(99, 0.1);
            let (report, received, len) =
                run_chaos_pair(scheme.clone(), &desc, 6, same_node, Some(plan));
            assert!(report.fault_summary.injected > 0);
            verify_received(&desc, &received, len);
        }
    }
}

#[test]
fn dropped_wire_payloads_are_retried_and_inflate_latency() {
    let desc = sparse_type(700);
    let (clean, _, _) = run_chaos_pair(SchemeKind::fusion_default(), &desc, 6, false, None);
    let plan = FaultPlan::new(21).with(FaultSite::LinkDrop, FaultSpec::with_probability(0.4));
    let (faulty, received, len) =
        run_chaos_pair(SchemeKind::fusion_default(), &desc, 6, false, Some(plan));
    verify_received(&desc, &received, len);
    assert!(
        faulty.fault_summary.retried > 0,
        "{:?}",
        faulty.fault_summary
    );
    assert!(
        faulty.final_lap() > clean.final_lap(),
        "retransmissions must cost time: {:?} vs {:?}",
        faulty.final_lap(),
        clean.final_lap()
    );
}

#[test]
fn duplicate_nic_completions_are_absorbed() {
    // Rendezvous-sized: duplicate CQEs only exist on the RPUT path.
    let desc = sparse_type(1500);
    let plan = FaultPlan::new(5).with(
        FaultSite::NicDupCompletion,
        FaultSpec::with_probability(1.0),
    );
    let (report, received, len) =
        run_chaos_pair(SchemeKind::fusion_default(), &desc, 6, false, Some(plan));
    verify_received(&desc, &received, len);
    assert!(report.fault_summary.injected > 0);
    assert!(
        report.fault_summary.spurious > 0,
        "the duplicate CQE must reach the guard: {:?}",
        report.fault_summary
    );
}

#[test]
fn failed_cooperative_launches_degrade_to_serial_kernels() {
    let desc = sparse_type(700);
    let plan =
        FaultPlan::new(11).with(FaultSite::FusedLaunchFail, FaultSpec::with_probability(1.0));
    let (report, received, len) =
        run_chaos_pair(SchemeKind::fusion_default(), &desc, 6, false, Some(plan));
    verify_received(&desc, &received, len);
    assert!(
        report.fault_summary.degraded > 0,
        "{:?}",
        report.fault_summary
    );
    let stats = report.sched_stats[0].expect("fusion stats");
    assert!(
        stats.degraded_flushes > 0,
        "scheduler must record the degraded flushes: {stats:?}"
    );
}

#[test]
fn injected_ring_exhaustion_stays_live_with_a_tiny_ring() {
    // Exhaustion injected on top of a 2-slot ring: the backpressure ladder
    // (forced flush + requeue + sync fallback when the ring is empty) must
    // keep every rank live.
    let cfg = FusionConfig {
        ring_capacity: 2,
        max_fused: 2,
        ..FusionConfig::default()
    };
    let desc = sparse_type(400);
    let plan = FaultPlan::new(3).with(FaultSite::RingExhausted, FaultSpec::with_probability(0.3));
    let (report, received, len) =
        run_chaos_pair(SchemeKind::Fusion(cfg), &desc, 8, false, Some(plan));
    verify_received(&desc, &received, len);
    assert!(report.fault_summary.injected > 0);
    assert_eq!(report.lap_count(), 1);
}

#[test]
fn fabric_chaos_is_byte_identical_at_any_shard_count() {
    // The tentpole claim: with the per-rank/keyed fault streams there is
    // no armed-plan shard clamp, and a routed chaos run's report and
    // received bytes are bit-identical at --shards 1, 2, and 4.
    let desc = sparse_type(700);
    let plan = || FaultPlan::uniform(4242, 0.08);
    let topo = || -> TopologyHandle { Arc::new(Hierarchy::lassen_like(4)) };
    let (base, base_rx) = run_chaos_ring(&desc, 5, topo(), Some(plan()), 1);
    assert!(base.fault_summary.injected > 0, "{:?}", base.fault_summary);
    for shards in [2u32, 4] {
        let (sharded, rx) = run_chaos_ring(&desc, 5, topo(), Some(plan()), shards);
        assert!(sharded.shard.barriers > 0, "sharding engaged ({shards})");
        assert_eq!(base.laps, sharded.laps, "--shards {shards}");
        assert_eq!(base.end_time, sharded.end_time, "--shards {shards}");
        assert_eq!(
            base.events_processed, sharded.events_processed,
            "--shards {shards}"
        );
        assert_eq!(
            base.fault_summary, sharded.fault_summary,
            "--shards {shards}"
        );
        assert_eq!(base.fabric, sharded.fabric, "--shards {shards}");
        assert_eq!(base_rx, rx, "received bytes at --shards {shards}");
    }
}

#[test]
fn hop_down_reroutes_around_dead_hops_and_preserves_bytes() {
    // Permanent hop failures must trigger ECMP re-resolution (and, on the
    // dual-rail lassen-like fabric, rail failover) while every receive
    // buffer still matches the fault-free baseline byte for byte.
    let desc = sparse_type(700);
    let topo = || -> TopologyHandle { Arc::new(Hierarchy::lassen_like(4)) };
    let (clean, clean_rx) = run_chaos_ring(&desc, 8, topo(), None, 1);
    assert!(clean.fabric.injected() == 0 && clean.fabric.reroutes == 0);
    let plan = FaultPlan::new(17).with(FaultSite::HopDown, FaultSpec::with_probability(0.15));
    let (faulty, rx) = run_chaos_ring(&desc, 8, topo(), Some(plan), 1);
    assert!(faulty.fabric.downs > 0, "{}", faulty.fabric);
    assert!(faulty.fabric.reroutes > 0, "{}", faulty.fabric);
    assert!(faulty.fabric.route_epoch > 0, "{}", faulty.fabric);
    assert_eq!(clean_rx, rx, "reroute must not corrupt a single byte");
}

#[test]
fn severed_fabric_forces_delivery_and_never_wedges() {
    // HopDown at probability 1.0 kills every hop a transfer touches; once
    // no surviving route exists the forced-delivery rung pushes the bytes
    // through the flat wire model — degraded and counted, never wedged.
    let desc = sparse_type(700);
    let topo = || -> TopologyHandle { Arc::new(Hierarchy::lassen_like(4)) };
    let (clean, clean_rx) = run_chaos_ring(&desc, 6, topo(), None, 1);
    let plan = FaultPlan::new(29).with(FaultSite::HopDown, FaultSpec::with_probability(1.0));
    let (faulty, rx) = run_chaos_ring(&desc, 6, topo(), Some(plan), 1);
    assert!(faulty.fabric.downs > 0, "{}", faulty.fabric);
    assert!(faulty.fabric.disconnects > 0, "{}", faulty.fabric);
    assert!(
        faulty.fault_summary.degraded > 0,
        "forced deliveries are accounted as degradations: {:?}",
        faulty.fault_summary
    );
    assert_eq!(faulty.lap_count(), clean.lap_count(), "every rank finished");
    assert_eq!(clean_rx, rx, "forced delivery still lands the bytes");
}

#[test]
fn ipc_map_failure_degrades_to_staged_copy() {
    let desc = sparse_type(700);
    let plan = FaultPlan::new(13).with(FaultSite::IpcMapFail, FaultSpec::with_probability(1.0));
    let (report, received, len) =
        run_chaos_pair(SchemeKind::fusion_default(), &desc, 6, true, Some(plan));
    verify_received(&desc, &received, len);
    assert!(
        report.fault_summary.degraded > 0,
        "{:?}",
        report.fault_summary
    );
}
