//! Property-based tests of the unified [`RequestLifecycle`] state machine
//! and the backpressure [`RequeueLadder`]: invariants that must hold for
//! *any* event sequence the protocol engines could produce — including the
//! fault-replayed streams the chaos harness feeds through `apply`.

use fusedpack_mpi::lifecycle::{
    LifecycleEvent, PackState, RequestLifecycle, RequeueLadder, Role, Stage,
};
use proptest::prelude::*;

const EVENTS: [LifecycleEvent; 9] = [
    LifecycleEvent::PackStarted,
    LifecycleEvent::PackFinished,
    LifecycleEvent::RtsSent,
    LifecycleEvent::Matched,
    LifecycleEvent::DataArrived,
    LifecycleEvent::Issued,
    LifecycleEvent::IssueRetracted,
    LifecycleEvent::Completed,
    LifecycleEvent::Failed,
];

fn arb_event() -> impl Strategy<Value = LifecycleEvent> {
    any::<usize>().prop_map(|i| EVENTS[i % EVENTS.len()])
}

/// Rank of a pack state in its monotone progression.
fn pack_rank(p: PackState) -> u8 {
    match p {
        PackState::NotStarted => 0,
        PackState::InFlight => 1,
        PackState::Done => 2,
    }
}

/// Drive one lifecycle through an arbitrary event stream with `try_apply`
/// and check the structural invariants after every step.
fn check_stream(
    mut lc: RequestLifecycle,
    events: Vec<LifecycleEvent>,
) -> Result<(), TestCaseError> {
    let role = lc.role();
    for ev in events {
        let before = lc;
        let res = lc.try_apply(ev);

        if res.is_err() {
            prop_assert_eq!(lc, before, "a rejected {:?} must not mutate state", ev);
            continue;
        }

        // Pack progress is monotone: no accepted event moves it backwards.
        prop_assert!(
            pack_rank(lc.pack()) >= pack_rank(before.pack()),
            "pack regressed {:?} -> {:?} on {:?}",
            before.pack(),
            lc.pack(),
            ev
        );
        // The RTS flag latches, and only ever on the send side.
        prop_assert!(!before.rts_sent() || lc.rts_sent(), "rts_sent unlatched");
        prop_assert!(
            role == Role::Send || !lc.rts_sent(),
            "a receive claimed to have sent an RTS"
        );
        // Role-reserved stages stay on their side of the diagram.
        if role == Role::Send {
            // A send never enters the recv-only matched stage.
            prop_assert_ne!(lc.stage(), Stage::AwaitingData);
        }
        // A send on the wire always has a finished pack (the Issued guard).
        if role == Role::Send && lc.stage() == Stage::Active {
            prop_assert_eq!(lc.pack(), PackState::Done, "issued with an unfinished pack");
        }
        // Terminal stages absorb: once `Done`/`Failed`, the stage never
        // moves again. The orthogonal pack/RTS facts may still latch (a
        // chaos-replayed Fin can complete a send whose pack kernel is
        // still in flight; its PackFinished lands after `Done`).
        if before.is_terminal() {
            prop_assert_eq!(
                lc.stage(),
                before.stage(),
                "{:?} moved a terminal stage",
                ev
            );
        }
        // The convenience predicates agree with the stage they summarize.
        prop_assert_eq!(lc.is_done(), lc.stage() == Stage::Done);
        prop_assert_eq!(lc.is_unmatched(), lc.stage() == Stage::Pending);
        prop_assert_eq!(lc.awaiting_data(), lc.stage() == Stage::AwaitingData);
        prop_assert_eq!(
            lc.pre_data(),
            matches!(lc.stage(), Stage::Pending | Stage::AwaitingData)
        );
    }
    Ok(())
}

/// Greedily drive a lifecycle to a terminal stage using only legal,
/// non-`Failed` events, proving liveness: every reachable state has a path
/// to `Done`. Returns the number of steps taken.
fn drive_to_done(lc: &mut RequestLifecycle) -> usize {
    // Preference order: finish packing, land the data, complete. Retract is
    // deliberately last — it is the only backward edge and never required.
    let forward = [
        LifecycleEvent::PackFinished,
        LifecycleEvent::Matched,
        LifecycleEvent::DataArrived,
        LifecycleEvent::Issued,
        LifecycleEvent::Completed,
    ];
    let mut steps = 0;
    while !lc.is_terminal() {
        let progressed = forward.iter().any(|&ev| lc.try_apply(ev).is_ok());
        assert!(progressed, "stuck in non-terminal state {lc:?}");
        steps += 1;
        assert!(steps <= 8, "termination should take a handful of steps");
    }
    steps
}

proptest! {
    /// Under any event stream, `try_apply` only ever takes edges of the
    /// documented relation: pack progress is monotone, the RTS latch is
    /// send-only and one-way, send/recv never enter each other's stages, an
    /// issued payload always has a finished pack, terminal stages absorb,
    /// and a rejection leaves the machine bit-identical.
    #[test]
    fn send_streams_stay_in_the_legal_relation(
        events in prop::collection::vec(arb_event(), 1..60),
    ) {
        check_stream(RequestLifecycle::send(), events)?;
    }

    #[test]
    fn recv_streams_stay_in_the_legal_relation(
        events in prop::collection::vec(arb_event(), 1..60),
    ) {
        check_stream(RequestLifecycle::recv(), events)?;
    }

    /// Liveness: from *any* reachable non-terminal state — produced by an
    /// arbitrary prefix of legal transitions — a driver that keeps issuing
    /// protocol-forward events reaches `Done` in a handful of steps. No
    /// request can be wedged by the order its events happened to arrive in.
    #[test]
    fn every_request_terminates(
        send_side in any::<bool>(),
        prefix in prop::collection::vec(arb_event(), 0..40),
    ) {
        let mut lc = if send_side {
            RequestLifecycle::send()
        } else {
            RequestLifecycle::recv()
        };
        for ev in prefix {
            // Reachable states only: failure injection is excluded here
            // because `Failed` is itself terminal (absorption is covered
            // by the relation properties above).
            if ev != LifecycleEvent::Failed {
                let _ = lc.try_apply(ev);
            }
        }
        drive_to_done(&mut lc);
        prop_assert!(lc.is_done());
    }

    /// The chaos backpressure queue is FIFO under any interleaving of
    /// fresh parks, drains, and mid-drain refusals (`park_front`): parked
    /// operations come back out in exactly the order they first entered,
    /// regardless of how many times the ring refused them.
    #[test]
    fn requeue_ladder_preserves_fifo_order(
        ops in prop::collection::vec(any::<usize>(), 1..120),
    ) {
        let mut ladder: RequeueLadder<u64> = RequeueLadder::new();
        let mut model: Vec<u64> = Vec::new(); // expected drain order
        let mut next_id = 0u64;
        let mut drained: Vec<u64> = Vec::new();

        for op in ops {
            match op % 3 {
                // A fresh refusal parks at the back.
                0 => {
                    ladder.park(next_id);
                    model.push(next_id);
                    next_id += 1;
                }
                // A successful drain step takes the oldest.
                1 => {
                    if let Some(got) = ladder.take_next() {
                        drained.push(got);
                    }
                }
                // A refused drain step puts the oldest back — it must
                // still come out first.
                _ => {
                    if let Some(got) = ladder.take_next() {
                        ladder.park_front(got);
                    }
                }
            }
            prop_assert_eq!(ladder.len(), model.len() - drained.len());
            prop_assert_eq!(ladder.is_empty(), model.len() == drained.len());
        }
        while let Some(got) = ladder.take_next() {
            drained.push(got);
        }
        prop_assert_eq!(drained, model, "drain order must equal first-park order");
    }
}

/// The two golden protocol walks, end to end — pinned here (not proptest)
/// so a relation change that breaks the real paths fails with a readable
/// name.
#[test]
fn canonical_rendezvous_walk() {
    let mut s = RequestLifecycle::send();
    s.apply(LifecycleEvent::PackStarted);
    s.apply(LifecycleEvent::RtsSent);
    s.apply(LifecycleEvent::PackFinished);
    s.apply(LifecycleEvent::Issued);
    s.apply(LifecycleEvent::Completed);
    assert!(s.is_done());
    assert_eq!(drive_to_done(&mut RequestLifecycle::send()), 3);

    let mut r = RequestLifecycle::recv();
    r.apply(LifecycleEvent::Matched);
    r.apply(LifecycleEvent::DataArrived);
    r.apply(LifecycleEvent::PackStarted);
    r.apply(LifecycleEvent::PackFinished);
    r.apply(LifecycleEvent::Completed);
    assert!(r.is_done());
}
