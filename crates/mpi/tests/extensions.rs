//! Tests for the framework extensions: DirectIPC fusion, ring-exhaustion
//! fallback, and degraded-system operation (no GDRCopy).

use fusedpack_core::FusionConfig;
use fusedpack_datatype::{Layout, TypeBuilder, TypeDesc};
use fusedpack_mpi::program::BufInit;
use fusedpack_mpi::{
    AppOp, BufId, ClusterBuilder, Program, RankId, RunReport, SchemeKind, TypeSlot,
};
use fusedpack_net::Platform;
use fusedpack_sim::Pcg32;
use std::sync::Arc;

fn sparse_type(points: u64) -> Arc<TypeDesc> {
    let disps: Vec<u64> = (0..points).map(|i| i * 3).collect();
    TypeBuilder::indexed_block(&disps, 1, TypeBuilder::float())
}

/// Two ranks exchanging `n` messages each way; returns (cluster report,
/// recv buffer ids of rank 1, buffer length).
fn run_pair(
    scheme: SchemeKind,
    desc: &Arc<TypeDesc>,
    n: usize,
    same_node: bool,
    gdrcopy: bool,
) -> (RunReport, Vec<Vec<u8>>, u64) {
    let layout = Layout::of(desc);
    let count = 2u64;
    let len = layout.footprint(count).max(1);

    let build = |seed: u64, peer: RankId| {
        let mut p = Program::new();
        let sbufs: Vec<BufId> = (0..n)
            .map(|i| p.buffer(len, BufInit::Random(seed + i as u64)))
            .collect();
        let rbufs: Vec<BufId> = (0..n).map(|_| p.buffer(len, BufInit::Zero)).collect();
        p.push(AppOp::Commit {
            slot: TypeSlot(0),
            desc: desc.clone(),
        });
        p.push(AppOp::ResetTimer);
        for (i, &b) in rbufs.iter().enumerate() {
            p.push(AppOp::Irecv {
                buf: b,
                ty: TypeSlot(0),
                count,
                src: peer,
                tag: i as u32,
            });
        }
        for (i, &b) in sbufs.iter().enumerate() {
            p.push(AppOp::Isend {
                buf: b,
                ty: TypeSlot(0),
                count,
                dst: peer,
                tag: i as u32,
            });
        }
        p.push(AppOp::Waitall);
        p.push(AppOp::RecordLap);
        let _ = sbufs;
        (p, rbufs)
    };

    let (p0, _) = build(900, RankId(1));
    let (p1, rbufs1) = build(1900, RankId(0));
    let mut builder = ClusterBuilder::new(Platform::lassen(), scheme)
        .add_rank(0, p0)
        .add_rank(if same_node { 0 } else { 1 }, p1);
    if !gdrcopy {
        builder = builder.without_gdrcopy();
    }
    let mut cluster = builder.build();
    let report = cluster.run();
    let received: Vec<Vec<u8>> = rbufs1
        .iter()
        .map(|&b| cluster.rank_buffer(RankId(1), b))
        .collect();
    (report, received, len)
}

fn verify_received(desc: &Arc<TypeDesc>, received: &[Vec<u8>], len: u64) {
    let layout = Layout::of(desc);
    for (i, got) in received.iter().enumerate() {
        let mut want = vec![0u8; len as usize];
        Pcg32::new(900 + i as u64, 0).fill_bytes(&mut want);
        for (addr, seg_len) in layout.absolute_segments(0, 2) {
            let (a, b) = (addr as usize, (addr + seg_len) as usize);
            assert_eq!(&got[a..b], &want[a..b], "msg {i} segment {addr}");
        }
    }
}

#[test]
fn direct_ipc_moves_correct_bytes_intra_node() {
    let desc = sparse_type(300);
    let (report, received, len) = run_pair(SchemeKind::fusion_default(), &desc, 6, true, true);
    verify_received(&desc, &received, len);
    // DirectIPC requests were actually fused (the scheduler saw them).
    let stats = report.sched_stats[1].expect("fusion stats");
    assert!(stats.requests_fused >= 6, "stats: {stats:?}");
}

#[test]
fn direct_ipc_beats_staged_path_intra_node() {
    let desc = sparse_type(1500);
    let (with_ipc, _, _) = run_pair(SchemeKind::fusion_default(), &desc, 8, true, true);
    let cfg = FusionConfig {
        enable_direct_ipc: false,
        ..FusionConfig::default()
    };
    let (without_ipc, received, len) = run_pair(SchemeKind::Fusion(cfg), &desc, 8, true, true);
    verify_received(&desc, &received, len); // staged intra-node path is also correct
    assert!(
        with_ipc.lap_makespan(0) < without_ipc.lap_makespan(0),
        "DirectIPC {:?} should beat pack-transfer-unpack {:?}",
        with_ipc.lap_makespan(0),
        without_ipc.lap_makespan(0)
    );
}

#[test]
fn direct_ipc_skips_pack_kernels_entirely() {
    let desc = sparse_type(500);
    let (report, _, _) = run_pair(SchemeKind::fusion_default(), &desc, 8, true, true);
    // The senders launch nothing: all kernels are the receivers' fused
    // DirectIPC loads.
    let total: u64 = report.kernels_launched.iter().sum();
    assert!(
        total <= 4,
        "expected only a few fused DirectIPC launches, got {total}"
    );
}

#[test]
fn ring_exhaustion_backpressure_preserves_correctness() {
    // A ring with 2 slots cannot hold 8 outstanding packs: the scheduler
    // rejects (the paper's negative-UID case) and the runtime runs its
    // backpressure ladder — forced RingPressure flush, FIFO requeue as
    // retirements free slots — instead of panicking or losing messages.
    // Correctness must be unaffected.
    let cfg = FusionConfig {
        ring_capacity: 2,
        max_fused: 2,
        ..FusionConfig::default()
    };
    let desc = sparse_type(400);
    let (report, received, len) = run_pair(SchemeKind::Fusion(cfg), &desc, 8, false, true);
    verify_received(&desc, &received, len);
    let stats = report.sched_stats[0].expect("fusion stats");
    assert!(stats.rejected > 0, "the tiny ring must reject: {stats:?}");
    // The ladder parked at least one operation and re-enqueued it later.
    assert!(
        report.fault_summary.degraded > 0,
        "backpressure requeues are counted as degradations: {:?}",
        report.fault_summary
    );
}

#[test]
fn hybrid_without_gdrcopy_still_correct_but_slower_on_dense() {
    // Dense small layout where the CPU path would normally win on Lassen.
    let desc = TypeBuilder::vector(16, 64, 96, TypeBuilder::double());
    let (with_gdr, _, _) = run_pair(SchemeKind::CpuGpuHybrid, &desc, 8, false, true);
    let (without_gdr, received, len) = run_pair(SchemeKind::CpuGpuHybrid, &desc, 8, false, false);
    verify_received(&desc, &received, len);
    assert!(
        with_gdr.lap_makespan(0) < without_gdr.lap_makespan(0),
        "losing GDRCopy must hurt the hybrid scheme on dense/small"
    );
}

#[test]
fn fusion_without_direct_ipc_config_roundtrip() {
    let cfg = FusionConfig {
        enable_direct_ipc: false,
        ..FusionConfig::default()
    };
    let scheme = SchemeKind::Fusion(cfg);
    let c = scheme
        .fusion_config()
        .expect("fusion scheme carries its config");
    assert!(!c.enable_direct_ipc);
}

#[test]
fn trace_records_fusion_and_wire_events() {
    let desc = sparse_type(200);
    let layout = Layout::of(&desc);
    let len = layout.footprint(1).max(1);
    let build = |peer: RankId| {
        let mut p = Program::new();
        let s = p.buffer(len, BufInit::Random(5));
        let r = p.buffer(len, BufInit::Zero);
        p.push(AppOp::Commit {
            slot: TypeSlot(0),
            desc: desc.clone(),
        });
        p.push(AppOp::Irecv {
            buf: r,
            ty: TypeSlot(0),
            count: 1,
            src: peer,
            tag: 0,
        });
        p.push(AppOp::Isend {
            buf: s,
            ty: TypeSlot(0),
            count: 1,
            dst: peer,
            tag: 0,
        });
        p.push(AppOp::Waitall);
        p
    };
    let mut cluster = ClusterBuilder::new(Platform::lassen(), SchemeKind::fusion_default())
        .with_trace(256)
        .add_rank(0, build(RankId(1)))
        .add_rank(1, build(RankId(0)))
        .build();
    cluster.run();
    let trace = cluster.trace();
    assert!(!trace.is_empty());
    assert!(
        !trace.for_component("fusion").is_empty(),
        "fused launches traced"
    );
    assert!(!trace.for_component("wire").is_empty(), "deliveries traced");
    // Timestamps are monotone.
    let times: Vec<_> = trace.events().map(|e| e.time).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn untraced_cluster_records_nothing() {
    let desc = sparse_type(50);
    let (report, _, _) = run_pair(SchemeKind::fusion_default(), &desc, 2, false, true);
    let _ = report;
    // Build directly to inspect the trace.
    let layout = Layout::of(&desc);
    let len = layout.footprint(2).max(1);
    let mut p = Program::new();
    let _ = p.buffer(len, BufInit::Zero);
    let mut cluster = ClusterBuilder::new(Platform::lassen(), SchemeKind::fusion_default())
        .add_rank(0, p)
        .build();
    cluster.run();
    assert!(cluster.trace().is_empty());
}

#[test]
fn explicit_pack_unpack_roundtrip_on_one_rank() {
    // Algorithm 1's primitives in isolation: MPI_Pack a non-contiguous
    // buffer into a packed one and MPI_Unpack it into a third; the third
    // must match the first on every layout segment.
    let desc = sparse_type(120);
    let layout = Layout::of(&desc);
    let count = 2u64;
    let len = layout.footprint(count).max(1);
    let packed_len = layout.total_bytes(count).max(1);

    let mut p = Program::new();
    let src = p.buffer(len, BufInit::Random(77));
    let packed = p.buffer(packed_len, BufInit::Zero);
    let out = p.buffer(len, BufInit::Zero);
    p.push(AppOp::Commit {
        slot: TypeSlot(0),
        desc: desc.clone(),
    });
    p.push(AppOp::Pack {
        src,
        ty: TypeSlot(0),
        count,
        dst: packed,
    });
    p.push(AppOp::Unpack {
        src: packed,
        ty: TypeSlot(0),
        count,
        dst: out,
    });

    let mut cluster = ClusterBuilder::new(Platform::lassen(), SchemeKind::GpuSync)
        .add_rank(0, p)
        .build();
    cluster.run();

    let a = cluster.rank_buffer(RankId(0), src);
    let b = cluster.rank_buffer(RankId(0), out);
    for (addr, seg_len) in layout.absolute_segments(0, count) {
        let (lo, hi) = (addr as usize, (addr + seg_len) as usize);
        assert_eq!(&a[lo..hi], &b[lo..hi], "segment {addr}");
    }
}

#[test]
fn device_sync_without_kernels_costs_only_the_call() {
    let mut p = Program::new();
    let _ = p.buffer(64, BufInit::Zero);
    p.push(AppOp::ResetTimer);
    p.push(AppOp::DeviceSync);
    p.push(AppOp::RecordLap);
    let mut cluster = ClusterBuilder::new(Platform::lassen(), SchemeKind::GpuSync)
        .add_rank(0, p)
        .build();
    let report = cluster.run();
    let lap = report.lap_makespan(0);
    let call = Platform::lassen().arch.stream_sync_call;
    assert_eq!(lap, call, "no kernels pending: only the API call cost");
}

/// Run a two-rank exchange under a specific rendezvous protocol.
fn run_pair_rndv(
    rndv: fusedpack_mpi::RndvProtocol,
    scheme: SchemeKind,
    desc: &Arc<TypeDesc>,
    n: usize,
) -> (RunReport, Vec<Vec<u8>>, u64) {
    let layout = Layout::of(desc);
    let count = 2u64;
    let len = layout.footprint(count).max(1);
    let build = |seed: u64, peer: RankId| {
        let mut p = Program::new();
        let sbufs: Vec<BufId> = (0..n)
            .map(|i| p.buffer(len, BufInit::Random(seed + i as u64)))
            .collect();
        let rbufs: Vec<BufId> = (0..n).map(|_| p.buffer(len, BufInit::Zero)).collect();
        p.push(AppOp::Commit {
            slot: TypeSlot(0),
            desc: desc.clone(),
        });
        p.push(AppOp::ResetTimer);
        for (i, &b) in rbufs.iter().enumerate() {
            p.push(AppOp::Irecv {
                buf: b,
                ty: TypeSlot(0),
                count,
                src: peer,
                tag: i as u32,
            });
        }
        for (i, &b) in sbufs.iter().enumerate() {
            p.push(AppOp::Isend {
                buf: b,
                ty: TypeSlot(0),
                count,
                dst: peer,
                tag: i as u32,
            });
        }
        p.push(AppOp::Waitall);
        p.push(AppOp::RecordLap);
        let _ = sbufs;
        (p, rbufs)
    };
    let (p0, _) = build(900, RankId(1));
    let (p1, rbufs1) = build(1900, RankId(0));
    let mut cluster = ClusterBuilder::new(Platform::lassen(), scheme)
        .rendezvous(rndv)
        .add_rank(0, p0)
        .add_rank(1, p1)
        .build();
    let report = cluster.run();
    let received = rbufs1
        .iter()
        .map(|&b| cluster.rank_buffer(RankId(1), b))
        .collect();
    (report, received, len)
}

#[test]
fn rget_moves_correct_bytes_under_every_scheme() {
    use fusedpack_mpi::RndvProtocol;
    let desc = sparse_type(700); // well past the eager limit
    for scheme in [
        SchemeKind::fusion_default(),
        SchemeKind::GpuSync,
        SchemeKind::GpuAsync,
        SchemeKind::CpuGpuHybrid,
    ] {
        let (_, received, len) = run_pair_rndv(RndvProtocol::Rget, scheme, &desc, 6);
        verify_received(&desc, &received, len);
    }
}

#[test]
fn rput_overlap_beats_rget_for_fusion() {
    // §IV-B1: RPUT lets the RTS/CTS handshake run during packing; RGET
    // serializes handshake after the pack. With bulk fused packing the
    // overlap should make RPUT at least as fast.
    use fusedpack_mpi::RndvProtocol;
    let desc = sparse_type(2500);
    let (rput, _, _) = run_pair_rndv(RndvProtocol::Rput, SchemeKind::fusion_default(), &desc, 16);
    let (rget, _, _) = run_pair_rndv(RndvProtocol::Rget, SchemeKind::fusion_default(), &desc, 16);
    assert!(
        rput.lap_makespan(0) <= rget.lap_makespan(0),
        "RPUT {:?} should not lose to RGET {:?}",
        rput.lap_makespan(0),
        rget.lap_makespan(0)
    );
}

#[test]
fn rget_senders_complete_via_fin() {
    use fusedpack_mpi::RndvProtocol;
    let desc = sparse_type(700);
    let (report, _, _) = run_pair_rndv(RndvProtocol::Rget, SchemeKind::GpuSync, &desc, 4);
    // The run terminating at all proves Fin-based completion worked; also
    // check it recorded a lap on both ranks.
    assert_eq!(report.lap_count(), 1);
}
