//! Offline stand-in for `crossbeam`.
//!
//! Provides the subset of the API this workspace uses — `thread::scope`
//! with `Scope::spawn` / `ScopedJoinHandle::join` — implemented on top of
//! `std::thread::scope` (stable since Rust 1.63). The build environment
//! has no network access, so the real crate cannot be fetched; this
//! stand-in keeps call sites source-compatible with crossbeam's scoped
//! threads so the dependency can be swapped for the real crate without
//! touching users.
//!
//! Deviations from the real crate, by design of the subset:
//!
//! * `Scope::spawn` takes a plain `FnOnce() -> T` (like `std::thread`)
//!   rather than crossbeam's `FnOnce(&Scope) -> T`; the workspace never
//!   spawns from inside a spawned closure.
//! * A panic in an unjoined spawned thread propagates out of `scope`
//!   (std semantics) instead of being captured in the returned `Result`.
//!   Joined handles still surface panics through `Result::Err`.

pub mod thread {
    use std::thread as stdthread;

    /// Result of joining a scoped thread: `Err` carries the panic payload.
    pub type Result<T> = stdthread::Result<T>;

    /// A scope for spawning threads that may borrow from the enclosing
    /// stack frame. Mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a thread spawned inside a [`scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` holds the panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread that may borrow non-`'static` data from the
        /// scope's environment. All threads are joined before [`scope`]
        /// returns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(f),
            }
        }
    }

    /// Create a scope for spawning borrowing threads. Every spawned
    /// thread is joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads_and_borrows_stack() {
        let counter = AtomicUsize::new(0);
        let counter_ref = &counter;
        let r = thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    s.spawn(move || {
                        counter_ref.fetch_add(1, Ordering::Relaxed);
                        i * 2
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum::<usize>()
        })
        .expect("scope");
        assert_eq!(counter.load(Ordering::Relaxed), 4);
        assert_eq!(r, 12); // 0 + 2 + 4 + 6
    }

    #[test]
    fn join_surfaces_panics() {
        let r = thread::scope(|s| {
            let h = s.spawn(|| panic!("boom"));
            h.join()
        })
        .expect("scope itself succeeds");
        assert!(r.is_err(), "panic is captured by join");
    }
}
