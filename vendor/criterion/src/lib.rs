//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This provides the subset of the criterion API the bench targets
//! use (`bench_function`, `benchmark_group` with `sample_size` /
//! `throughput` / `finish`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros) backed by a plain `std::time::Instant` harness.
//!
//! Mode detection mirrors criterion: `cargo bench` invokes the binary with
//! `--bench`, which runs timed samples and prints a median per benchmark;
//! `cargo test` runs the same binary without it, which executes every
//! benchmark body exactly once as a smoke test.

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Timed run under `cargo bench`.
    Measure,
    /// One-iteration smoke run under `cargo test`.
    Smoke,
}

fn detect_mode() -> Mode {
    if std::env::args().any(|a| a == "--bench") {
        Mode::Measure
    } else {
        Mode::Smoke
    }
}

/// How much data one iteration processes; used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free-standing CLI arg (as passed by `cargo bench -- <f>`)
        // filters benchmarks by substring, like the real crate.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            mode: detect_mode(),
            filter,
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.mode, &self.filter, &id.into(), 10, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(
            self.criterion.mode,
            &self.criterion.filter,
            &full,
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    mode: Mode,
    /// Total time spent inside `iter` bodies for this sample.
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        match self.mode {
            Mode::Smoke => {
                std::hint::black_box(body());
                self.iters += 1;
            }
            Mode::Measure => {
                // Calibrate an iteration count aiming at ~2ms per sample,
                // then time a batch.
                let t0 = Instant::now();
                std::hint::black_box(body());
                let once = t0.elapsed().max(Duration::from_nanos(50));
                let reps =
                    (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
                let t1 = Instant::now();
                for _ in 0..reps {
                    std::hint::black_box(body());
                }
                self.elapsed += t1.elapsed();
                self.iters += reps;
            }
        }
    }
}

fn run_one<F>(
    mode: Mode,
    filter: &Option<String>,
    id: &str,
    samples: usize,
    tput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !id.contains(pat.as_str()) {
            return;
        }
    }
    match mode {
        Mode::Smoke => {
            let mut b = Bencher {
                mode,
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
        }
        Mode::Measure => {
            let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
            for _ in 0..samples {
                let mut b = Bencher {
                    mode,
                    elapsed: Duration::ZERO,
                    iters: 0,
                };
                f(&mut b);
                if b.iters > 0 {
                    per_iter.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
                }
            }
            per_iter.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
            let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or(0.0);
            let extra = match tput {
                Some(Throughput::Bytes(n)) if median > 0.0 => {
                    format!("  {:>8.2} GiB/s", n as f64 / median / 1.073_741_824)
                }
                Some(Throughput::Elements(n)) if median > 0.0 => {
                    format!("  {:>8.2} Melem/s", n as f64 / median / 1e3)
                }
                _ => String::new(),
            };
            println!("{id:<48} {:>12.1} ns/iter{extra}", median);
        }
    }
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
