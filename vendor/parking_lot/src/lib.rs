//! Offline stand-in for `parking_lot`.
//!
//! Provides the subset of the API this workspace uses — `Mutex` and
//! `RwLock` whose `lock()`/`read()`/`write()` return guards directly
//! (no poisoning `Result`) — implemented over `std::sync`. The build
//! environment has no network access, so the real crate cannot be
//! fetched; call sites stay source-compatible so the dependency can be
//! swapped for the real crate without touching users.
//!
//! Poison semantics follow parking_lot: a panic while holding a guard
//! does not poison the lock; later acquisitions see the data as-is.

use std::sync::{self, TryLockError};

/// RAII guard for [`Mutex`]; derefs to the protected data.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared RAII guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive RAII guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never fails: panics in other
/// holders do not poison it.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`. `const`, so it can back
    /// `static` registries.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking; `None` if currently held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Borrow the data without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's no-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the protected data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Borrow the data without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poisoner");
        })
        .join();
        // parking_lot semantics: no poisoning, lock() still succeeds.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().expect("free"), 5);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn const_new_in_static() {
        static REGISTRY: Mutex<Vec<u32>> = Mutex::new(Vec::new());
        REGISTRY.lock().push(9);
        assert_eq!(REGISTRY.lock().pop(), Some(9));
    }
}
