//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no network access and no crate cache, so the
//! real serde derive macros cannot be fetched. The workspace only ever uses
//! `#[derive(Serialize, Deserialize)]` as inert annotations (no code calls
//! serialization), so these derives simply accept the input and emit no
//! code. Swapping back to the real crates is a two-line change in the
//! workspace `Cargo.toml`.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
