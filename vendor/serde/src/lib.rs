//! Offline stand-in for `serde`.
//!
//! Provides the two names the workspace imports (`Serialize`,
//! `Deserialize`) in both the macro namespace (no-op derives from the
//! sibling `serde_derive` stub) and the trait namespace, so
//! `use serde::{Deserialize, Serialize};` plus `#[derive(...)]` compiles
//! unchanged. Nothing in the workspace calls serialization at runtime;
//! JSON emission is hand-rolled where needed (see `fusedpack-telemetry`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (never implemented by the
/// no-op derive; present so fully-qualified bounds would still name-check).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
