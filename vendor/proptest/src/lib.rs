//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This reimplements the (small) slice of the proptest API the
//! workspace's property tests use: `Strategy` with `prop_map` /
//! `prop_flat_map` / `boxed`, integer and float range strategies, tuple
//! strategies, `Just`, `prop::collection::vec`, `any::<bool>()`,
//! `prop_oneof!`, and the `proptest!` / `prop_assert*` / `prop_assume!`
//! macros. Inputs are generated from a deterministic SplitMix64 stream
//! seeded per test name, so failures reproduce across runs. There is no
//! shrinking: a failing case reports the case index and message only.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(...)` resolves.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Union of heterogeneous strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Skip the current case (not a failure) when a precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// The test-harness macro: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-able function that runs the body over generated
/// inputs. An optional leading `#![proptest_config(..)]` sets the case
/// count for the whole block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut rejects: u32 = 0;
            let mut case: u32 = 0;
            while case < config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body;
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => case += 1,
                    ::std::result::Result::Err(e) if e.is_reject() => {
                        rejects += 1;
                        if rejects > config.cases.saturating_mul(16).max(1024) {
                            panic!(
                                "proptest '{}': too many rejected cases ({rejects})",
                                stringify!($name)
                            );
                        }
                    }
                    ::std::result::Result::Err(e) => {
                        panic!("proptest '{}' case {case} failed: {e}", stringify!($name));
                    }
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}
