//! `any::<T>()` for the handful of types the workspace asks for.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i32, i64);

pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Strategy over the full value space of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
