//! The `Strategy` trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type. Unlike the real crate there
/// is no value tree and no shrinking: `generate` draws a fresh value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe indirection for [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let mid = self.inner.generate(rng);
        (self.f)(mid).generate(rng)
    }
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (S0.0, S1.1),
    (S0.0, S1.1, S2.2),
    (S0.0, S1.1, S2.2, S3.3),
    (S0.0, S1.1, S2.2, S3.3, S4.4),
);
