//! Deterministic RNG, config, and error types for the mini harness.

use std::fmt;

/// Per-block configuration. Only `cases` is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the full suite quick
        // while still exploring a meaningful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass: a genuine failure or a rejected
/// (`prop_assume!`) precondition.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64: tiny, fast, and plenty for input generation. Seeded from
/// the test name so every test gets an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seed from a test name (FNV-1a), optionally perturbed by
    /// `PROPTEST_SEED` in the environment for exploratory reruns.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                h = h.wrapping_add(extra.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            }
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-input scale.
        self.next_u64() % bound
    }

    /// Uniform draw in `[0.0, 1.0)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
